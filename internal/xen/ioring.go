package xen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
)

// IORing is the production datapath ring: one queue of a multi-queue
// split device. It keeps the shared-memory layout of Ring (free-running
// uint32 producer/consumer indices over a power-of-two slot array) and
// adds the two things the simple ring lacks:
//
//   - Bulk transfer. PushRequests/TakeRequests move a whole burst under
//     one lock acquisition and one RingPut/RingGet charge, with the
//     per-slot cost reduced to the MemWrite/MemRead of the slot itself —
//     the amortization that lets a backend serve a 64-deep burst for
//     roughly the price the simple ring paid per request.
//
//   - Event-index doorbell suppression (Xen's req_event/rsp_event
//     protocol). The consumer advertises the producer index at which it
//     next wants a doorbell; the producer rings only when its push
//     crosses that mark. FinishRequestConsume(threshold) re-arms the
//     mark threshold slots ahead of the consumer — threshold 1 is the
//     classic Xen protocol (one doorbell per quiet->busy transition),
//     larger thresholds coalesce further and rely on the backend's
//     scheduler slice (Domain.BackgroundWork) to bound the wait for a
//     sub-threshold trickle.
//
// The lost-wakeup defense is the same FINAL CHECK as Xen's
// RING_FINAL_CHECK_FOR_REQUESTS: Finish*Consume returns true when work
// arrived between the drain and the re-arm, and the consumer must loop
// again instead of sleeping.
type IORing[Req, Resp any] struct {
	mu    sync.Mutex
	costs *hw.CostModel
	mask  uint32
	reqs  []Req
	resps []Resp

	reqProd, reqCons   uint32
	respProd, respCons uint32

	// reqEvent/respEvent are the peer-advertised wake marks: the
	// producer sends a doorbell only when a push moves the producer
	// index past the mark (unsigned wrap-around compare, exactly Xen's
	// RING_PUSH_*_AND_CHECK_NOTIFY).
	reqEvent, respEvent uint32

	// dropReqNotify forces the next n request-doorbell decisions to
	// "suppressed" (chaos: a lost doorbell). reqDropPending remembers
	// that a doorbell was swallowed so the consumer can account a
	// poll-side recovery when it finds the work anyway.
	dropReqNotify  int
	reqDropPending bool

	Stats IORingStats
}

// IORingStats counts slot traffic and doorbell decisions. The ratio of
// slots to doorbells sent is the notify-suppression ratio the datapath
// bench reports. Atomics: both ends may run on different CPUs.
type IORingStats struct {
	ReqSlots  atomic.Uint64 // requests pushed
	RespSlots atomic.Uint64 // responses pushed

	ReqKicks       atomic.Uint64 // request pushes that crossed the wake mark
	ReqSuppressed  atomic.Uint64 // request pushes with the doorbell elided
	RespKicks      atomic.Uint64
	RespSuppressed atomic.Uint64

	NotifiesDropped atomic.Uint64 // doorbells swallowed by fault injection
	RecoveredByPoll atomic.Uint64 // dropped doorbells healed by a poll drain
}

// NewIORing builds one queue with capacity slots per direction
// (rounded up to a power of two, min 2). Both wake marks start armed
// at index 1: the very first push in each direction rings the doorbell.
func NewIORing[Req, Resp any](capacity int, costs *hw.CostModel) *IORing[Req, Resp] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &IORing[Req, Resp]{
		costs:     costs,
		mask:      uint32(n - 1),
		reqs:      make([]Req, n),
		resps:     make([]Resp, n),
		reqEvent:  1,
		respEvent: 1,
	}
}

// Capacity is the slot count per direction.
func (r *IORing[Req, Resp]) Capacity() int { return int(r.mask) + 1 }

// PushRequests enqueues as many of reqs as fit, returning how many were
// taken and whether the producer must ring the request doorbell. One
// RingPut charge covers the whole burst; each slot costs a MemWrite.
func (r *IORing[Req, Resp]) PushRequests(c *hw.CPU, reqs []Req) (n int, notify bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.RingPut)
	old := r.reqProd
	free := r.mask + 1 - (old - r.reqCons)
	n = len(reqs)
	if uint32(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.reqs[(old+uint32(i))&r.mask] = reqs[i]
	}
	r.reqProd = old + uint32(n)
	c.Charge(hw.Cycles(n) * r.costs.MemWrite)
	if n == 0 {
		return 0, false
	}
	r.Stats.ReqSlots.Add(uint64(n))
	// Xen's RING_PUSH_REQUESTS_AND_CHECK_NOTIFY: notify iff the
	// advertised wake mark lies in (old, new] under wrap arithmetic.
	notify = r.reqProd-r.reqEvent < r.reqProd-old
	if notify && r.dropReqNotify > 0 {
		r.dropReqNotify--
		r.reqDropPending = true
		r.Stats.NotifiesDropped.Add(1)
		notify = false
	}
	if notify {
		r.Stats.ReqKicks.Add(1)
	} else {
		r.Stats.ReqSuppressed.Add(1)
	}
	return n, notify
}

// TakeRequests dequeues up to len(buf) pending requests into buf. One
// RingGet charge covers the burst; each slot costs a MemRead.
func (r *IORing[Req, Resp]) TakeRequests(c *hw.CPU, buf []Req) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.RingGet)
	n := int(r.reqProd - r.reqCons)
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = r.reqs[(r.reqCons+uint32(i))&r.mask]
	}
	r.reqCons += uint32(n)
	c.Charge(hw.Cycles(n) * r.costs.MemRead)
	if n > 0 && r.reqDropPending {
		// The producer's doorbell was swallowed but a poll drain found
		// the work anyway — the liveness fallback the protocol promises.
		r.reqDropPending = false
		r.Stats.RecoveredByPoll.Add(1)
	}
	return n
}

// FinishRequestConsume re-arms the request doorbell threshold slots
// ahead of the consumer index and reports whether requests are already
// pending — the FINAL CHECK: on true the consumer must drain again
// rather than sleep, or a push that saw the old mark is lost.
func (r *IORing[Req, Resp]) FinishRequestConsume(c *hw.CPU, threshold int) bool {
	if threshold < 1 {
		threshold = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.MemWrite)
	r.reqEvent = r.reqCons + uint32(threshold)
	return r.reqProd != r.reqCons
}

// PushResponses enqueues completions. The response direction can never
// overflow: a slot is freed by the request the response answers, so the
// caller may assume every response fits. It panics on overflow rather
// than silently dropping a completion.
func (r *IORing[Req, Resp]) PushResponses(c *hw.CPU, resps []Resp) (notify bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.RingPut)
	old := r.respProd
	if uint32(len(resps)) > r.mask+1-(old-r.respCons) {
		panic(fmt.Sprintf("xen: IORing response overflow: %d responses, %d free",
			len(resps), r.mask+1-(old-r.respCons)))
	}
	for i := range resps {
		r.resps[(old+uint32(i))&r.mask] = resps[i]
	}
	r.respProd = old + uint32(len(resps))
	c.Charge(hw.Cycles(len(resps)) * r.costs.MemWrite)
	if len(resps) == 0 {
		return false
	}
	r.Stats.RespSlots.Add(uint64(len(resps)))
	notify = r.respProd-r.respEvent < r.respProd-old
	if notify {
		r.Stats.RespKicks.Add(1)
	} else {
		r.Stats.RespSuppressed.Add(1)
	}
	return notify
}

// TakeResponses dequeues up to len(buf) completions into buf.
func (r *IORing[Req, Resp]) TakeResponses(c *hw.CPU, buf []Resp) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.RingGet)
	n := int(r.respProd - r.respCons)
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = r.resps[(r.respCons+uint32(i))&r.mask]
	}
	r.respCons += uint32(n)
	c.Charge(hw.Cycles(n) * r.costs.MemRead)
	return n
}

// FinishResponseConsume is the response-direction FINAL CHECK: re-arm
// the response doorbell threshold slots ahead and report pending work.
func (r *IORing[Req, Resp]) FinishResponseConsume(c *hw.CPU, threshold int) bool {
	if threshold < 1 {
		threshold = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Charge(r.costs.MemWrite)
	r.respEvent = r.respCons + uint32(threshold)
	return r.respProd != r.respCons
}

// RequestsPending reports queued, un-consumed requests.
func (r *IORing[Req, Resp]) RequestsPending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.reqProd - r.reqCons)
}

// ResponsesPending reports queued, un-consumed responses.
func (r *IORing[Req, Resp]) ResponsesPending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.respProd - r.respCons)
}

// ReqConsumerIndex exposes the free-running request consumer index for
// progress audits (a stuck index with pending requests is a ring stall).
func (r *IORing[Req, Resp]) ReqConsumerIndex() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reqCons
}

// InjectDropNotify arms fault injection: the next n request doorbells
// that would be sent are silently swallowed (n=0 disarms). The protocol
// must heal through the poll path; RecoveredByPoll counts when it does.
func (r *IORing[Req, Resp]) InjectDropNotify(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropReqNotify = n
	if n == 0 {
		r.reqDropPending = false
	}
}
