package xen

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestBootReservesFootprint(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
	before := m.Frames.Available()
	v, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := v.Reserved.Range()
	if int(hi-lo) != ReservedFrames {
		t.Fatalf("reserved %d frames", hi-lo)
	}
	if m.Frames.Available() != before-ReservedFrames {
		t.Fatal("machine allocator not shrunk")
	}
	// Reserved frames carry VMM ownership.
	if v.FT.Get(lo).Owner != DomVMM {
		t.Fatal("reserved frame not VMM-owned")
	}
	if v.Active {
		t.Fatal("freshly booted VMM active (it must be pre-cached only)")
	}
}

func TestActivateInstallsTables(t *testing.T) {
	v, _, c := testVMM(t)
	if c.IDTR != v.IDT || c.GDTR != v.GDT {
		t.Fatal("activate did not install the VMM tables")
	}
	if !v.Active {
		t.Fatal("not active")
	}
	v.Deactivate(c)
	if v.Active {
		t.Fatal("still active")
	}
}

func TestCreateDomainOwnership(t *testing.T) {
	v, d, _ := testVMM(t)
	lo, hi := d.Frames.Range()
	if v.FT.Get(lo).Owner != d.ID || v.FT.Get(hi-1).Owner != d.ID {
		t.Fatal("partition frames not owned by the domain")
	}
	if d.VCPU0() == nil || !d.VCPU0().VIF() {
		t.Fatal("vcpu not initialized")
	}
}

func TestAdoptDomainKeepsAllocator(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	d := v.AdoptDomain("os", m.Frames, true)
	if d.Frames != m.Frames {
		t.Fatal("adopted domain must keep its own allocator")
	}
	if !d.Privileged {
		t.Fatal("adopted OS must be the driver domain")
	}
	if v.DriverDomain() != d {
		t.Fatal("driver domain lookup failed")
	}
}

func TestConsoleIO(t *testing.T) {
	v, d, c := testVMM(t)
	v.HypConsoleIO(c, d, "hello from the guest")
	log := v.ConsoleLog()
	if len(log) != 1 || !strings.Contains(log[0], "hello from the guest") {
		t.Fatalf("console log: %v", log)
	}
	if !strings.Contains(log[0], "dom") {
		t.Fatal("console line not attributed to a domain")
	}
}

func TestEmulateRunsAtPL0(t *testing.T) {
	v, d, c := testVMM(t)
	c.SetMode(hw.PL1)
	var seen uint8 = 99
	before := c.Now()
	v.Emulate(c, d, func() { seen = c.CPL })
	if seen != hw.PL0 {
		t.Fatalf("emulation ran at PL%d", seen)
	}
	if c.CPL != hw.PL1 {
		t.Fatal("CPL not restored")
	}
	if c.Now()-before < v.M.Costs.WorldSwitch {
		t.Fatal("trap-and-emulate not charged")
	}
	if d.Stats.FaultBounces.Load() == 0 {
		t.Fatal("bounce not counted")
	}
}

func TestDeviceIRQForwardedToDriverDomain(t *testing.T) {
	// A physical disk interrupt while an unprivileged domain runs must
	// reach the *driver* domain's handler.
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	d0, _ := v.CreateDomain("dom0", 512, true)
	dU, _ := v.CreateDomain("domU", 512, false)
	v.SetCurrent(c, dU)

	served := 0
	d0.SetTrapGate(hw.VecDisk, func(cc *hw.CPU, f *hw.TrapFrame) { served++ })
	// The unprivileged guest is executing (deprivileged, interrupts on —
	// the hardware IF belongs to the VMM).
	c.SetMode(hw.PL1)
	c.IF = true
	c.LAPIC.Post(hw.VecDisk)
	c.Charge(10)
	if served != 1 {
		t.Fatalf("driver domain served %d disk IRQs", served)
	}
	// The VMM switched to dom0 and back.
	if v.Stats.DomSwitches.Load() < 2 {
		t.Fatalf("dom switches = %d", v.Stats.DomSwitches.Load())
	}
}

func TestHypSchedBlockWaitsForEvent(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	// Bind a pair; dU blocks until d0 signals.
	pU := v.EvtchnAllocUnbound(c, dU, d0.ID)
	woken := false
	dU.SetPortHandler(pU, func(cc *hw.CPU) { woken = true })
	p0, err := v.EvtchnBindInterdomain(c, d0, dU.ID, pU)
	if err != nil {
		t.Fatal(err)
	}

	// Mask the target so the event stays pending instead of being
	// delivered synchronously at send time.
	dU.VCPU0().SetVIF(false)
	v.SetCurrent(c, d0)
	if err := v.EvtchnSend(c, d0, p0); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Fatal("masked event delivered early")
	}
	v.SetCurrent(c, dU)
	dU.VCPU0().SetVIF(true)
	v.HypSchedBlock(c, dU)
	if !woken {
		t.Fatal("block did not drain the pending event")
	}
}

func TestRunInDomainChargesSwitch(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	_ = dU
	before := c.Now()
	ran := false
	v.RunInDomain(c, d0, func() {
		ran = true
		if v.Current(c) != d0 {
			t.Error("current domain not switched")
		}
	})
	if !ran {
		t.Fatal("fn did not run")
	}
	cost := c.Now() - before
	want := v.M.Costs.DomSchedLatency + 2*v.M.Costs.DomSwitch
	if cost < want {
		t.Fatalf("charged %d, want >= %d", cost, want)
	}
}

func TestUpdateDescriptorValidation(t *testing.T) {
	v, d, c := testVMM(t)
	g := hw.NewGDT("guest", hw.PL1)

	// Legal: a user-code descriptor.
	ok := hw.SegDesc{Kind: hw.SegCode, Limit: 0xFFFF, DPL: hw.PL3, Present: true}
	if err := v.HypUpdateDescriptor(c, d, g, hw.GDTUserCode, ok); err != nil {
		t.Fatal(err)
	}
	// Escalation: a PL0 descriptor from a deprivileged guest.
	bad := hw.SegDesc{Kind: hw.SegCode, Limit: 0xFFFF, DPL: hw.PL0, Present: true}
	if err := v.HypUpdateDescriptor(c, d, g, hw.GDTUserCode, bad); err == nil {
		t.Fatal("guest installed a PL0 descriptor")
	}
	// Hypervisor slots are immutable.
	if err := v.HypUpdateDescriptor(c, d, g, hw.GDTVMMCode, ok); err == nil {
		t.Fatal("guest modified a hypervisor descriptor")
	}
	// Range check.
	if err := v.HypUpdateDescriptor(c, d, g, 99, ok); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
