package xen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hw"
)

// slotRef is one mapped leaf slot a mutation can target.
type slotRef struct {
	table hw.PFN
	idx   int
}

// TestThreeWayPolicyEquivalence is the §5.1.2 property extended to all
// three tracking policies: for the same seeded history of page-table
// mutations, active tracking, serial recompute, parallel recompute and
// journal replay (or its fallback) all produce bit-identical frame
// accounting.
func TestThreeWayPolicyEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		for _, capacity := range []int{4, DefaultJournalEntries} {
			t.Run(fmt.Sprintf("seed=%d/cap=%d", seed, capacity), func(t *testing.T) {
				threeWayRound(t, seed, capacity)
			})
		}
	}
}

func threeWayRound(t *testing.T, seed int64, capacity int) {
	rng := rand.New(rand.NewSource(seed))
	v, d, c := testVMM(t)

	// A forest of 2-4 trees with random page counts.
	ntrees := 2 + rng.Intn(3)
	var roots []hw.PFN
	var slots []slotRef
	var frames []hw.PFN // legal mapping targets
	for i := 0; i < ntrees; i++ {
		pages := 3 + rng.Intn(10)
		tb, data := buildTree(t, v, d, pages)
		roots = append(roots, tb.Root)
		frames = append(frames, data...)
		for p := 0; p < pages; p++ {
			s, ok := tb.ExistingSlot(hw.VirtAddr(0x0800_0000 + p<<hw.PageShift))
			if !ok {
				t.Fatal("missing slot")
			}
			slots = append(slots, slotRef{s.Table, s.Index})
		}
	}
	// newPTE draws a random legal value for a leaf slot: a writable or
	// read-only mapping of a domain frame, or a cleared entry.
	newPTE := func() hw.PTE {
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return hw.MakePTE(frames[rng.Intn(len(frames))], hw.PTEPresent|hw.PTEUser)
		default:
			return hw.MakePTE(frames[rng.Intn(len(frames))], hw.PTEPresent|hw.PTEWrite|hw.PTEUser)
		}
	}

	// Phase A — active tracking: pin the forest through the mirror and
	// apply random live updates.
	for _, r := range roots {
		if err := v.MirrorPinRoot(c, d, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8+rng.Intn(12); i++ {
		s := slots[rng.Intn(len(slots))]
		if err := v.MirrorPTEWrite(c, d, MMUUpdate{Table: s.table, Index: s.idx, New: newPTE()}); err != nil {
			t.Fatal(err)
		}
	}
	active := v.FT.Clone()

	// Phase B — serial recompute over the same memory.
	v.ReleaseFrameInfo(c, d)
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	if err := v.FT.Equal(active); err != nil {
		t.Fatalf("serial recompute diverges from active tracking: %v", err)
	}

	// Phase C — parallel recompute.
	v.ReleaseFrameInfo(c, d)
	if err := v.RecomputeFrameInfoParallel(c, d, roots, 2+rng.Intn(3)); err != nil {
		t.Fatal(err)
	}
	if err := v.FT.Equal(active); err != nil {
		t.Fatalf("parallel recompute diverges from active tracking: %v", err)
	}

	// Phase D — journal: detach freezes the accounting, native-mode
	// stores hit memory and the ring, re-attach replays (or overflows
	// into the fallback at small capacities). Either way the result must
	// match a from-scratch recompute of the final memory state.
	j := v.EnableJournal(capacity)
	v.JournalDetach(c, d)
	for i := 0; i < 2+rng.Intn(10); i++ {
		s := slots[rng.Intn(len(slots))]
		journalWrite(v, j, s.table, s.idx, newPTE())
	}
	if err := v.JournalReattach(c, d, roots, 2); err != nil {
		t.Fatal(err)
	}
	reattached := v.FT.Clone()
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := canonical(t, v, d, c, roots).Equal(reattached); err != nil {
		st := j.StatsSnapshot()
		t.Fatalf("journal re-attach diverges from recompute (stats %+v): %v", st, err)
	}
}
