package xen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func testFT() *FrameTable {
	return NewFrameTable(hw.NewPhysMem(4 << 20))
}

func TestFrameTypeLifecycle(t *testing.T) {
	ft := testFT()
	if err := ft.GetType(5, FrameWritable); err != nil {
		t.Fatal(err)
	}
	if err := ft.GetType(5, FrameWritable); err != nil {
		t.Fatal(err)
	}
	if got := ft.Get(5); got.Type != FrameWritable || got.TypeCount != 2 {
		t.Fatalf("info = %+v", got)
	}
	ft.PutType(5)
	ft.PutType(5)
	if got := ft.Get(5); got.Type != FrameNone || got.TypeCount != 0 {
		t.Fatalf("after release: %+v", got)
	}
}

func TestFrameRetypeConflict(t *testing.T) {
	ft := testFT()
	if err := ft.GetType(7, FrameL1); err != nil {
		t.Fatal(err)
	}
	// A live page table must never become writable (§5.1.2).
	if err := ft.GetType(7, FrameWritable); err == nil {
		t.Fatal("page-table frame became writable")
	}
	ft.PutType(7)
	// Once the count drops to zero, re-typing is legal.
	if err := ft.GetType(7, FrameWritable); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRefUnderflowPanics(t *testing.T) {
	ft := testFT()
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	ft.PutRef(3)
}

func TestFrameTypeUnderflowPanics(t *testing.T) {
	ft := testFT()
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	ft.PutType(3)
}

func TestFrameInvariants(t *testing.T) {
	ft := testFT()
	ft.GetRef(1)
	ft.GetType(1, FrameWritable)
	if err := ft.CheckInvariants(); err != nil {
		t.Fatalf("valid state flagged: %v", err)
	}
	// Corrupt: typed ref without existence ref.
	ft2 := testFT()
	ft2.GetType(2, FrameL1)
	if err := ft2.CheckInvariants(); err == nil {
		t.Fatal("type count > total refs not detected")
	}
}

func TestFrameTableCloneEqualReset(t *testing.T) {
	ft := testFT()
	ft.SetOwner(3, 7)
	ft.GetRef(3)
	ft.GetType(3, FrameWritable)
	cp := ft.Clone()
	if err := ft.Equal(cp); err != nil {
		t.Fatalf("clone differs: %v", err)
	}
	cp.GetRef(4)
	if err := ft.Equal(cp); err == nil {
		t.Fatal("difference not detected")
	}
	ft.Reset()
	if got := ft.Get(3); got.TypeCount != 0 || got.TotalRefs != 0 {
		t.Fatal("reset incomplete")
	}
	if got := ft.Get(3); got.Owner != 7 {
		t.Fatal("reset dropped ownership")
	}
}

// Property: any sequence of balanced get/put operations keeps the
// invariants and ends with zero counts.
func TestFrameAccountingBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := testFT()
		type held struct {
			pfn   hw.PFN
			typed bool
		}
		var refs []held
		for op := 0; op < 300; op++ {
			pfn := hw.PFN(rng.Intn(32))
			switch rng.Intn(3) {
			case 0: // take an existence ref
				ft.GetRef(pfn)
				refs = append(refs, held{pfn, false})
			case 1: // take a typed+existence ref pair
				if err := ft.GetType(pfn, FrameWritable); err == nil {
					ft.GetRef(pfn)
					refs = append(refs, held{pfn, true})
				}
			case 2: // release something
				if len(refs) > 0 {
					i := rng.Intn(len(refs))
					h := refs[i]
					refs = append(refs[:i], refs[i+1:]...)
					if h.typed {
						ft.PutType(h.pfn)
					}
					ft.PutRef(h.pfn)
				}
			}
			if err := ft.CheckInvariants(); err != nil {
				return false
			}
		}
		for _, h := range refs {
			if h.typed {
				ft.PutType(h.pfn)
			}
			ft.PutRef(h.pfn)
		}
		for pfn := 0; pfn < 32; pfn++ {
			fi := ft.Get(hw.PFN(pfn))
			if fi.TypeCount != 0 || fi.TotalRefs != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
