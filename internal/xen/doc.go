// Package xen implements the full-fledged VMM substrate Mercury attaches
// and detaches: domains, hypercalls, per-frame ownership/type/count
// accounting with direct-mode paging, event channels, grant-mapped shared
// I/O rings with backend drivers, and a simple domain scheduler. It is a
// from-scratch reimplementation of the Xen 3.0.x mechanisms the paper's
// prototype relies on, reduced to the parts that determine behaviour and
// cost.
//
// The split-device datapath (paper §5.2) has two tiers. Ring and the
// block/net backends in backend.go are the teaching version: one
// request per doorbell, backend called as a function. IORing and
// BlkMQBackend are the production version: multi-queue rings moving
// request bursts under one charge, event-index doorbell suppression
// with a coalescing re-arm threshold (FinishRequestConsume's FINAL
// CHECK prevents lost wakeups), batched all-or-nothing grant mapping
// (GrantMapBatch, one idempotent unmap per burst), and a backend served
// from the driver domain's scheduler slice (Domain.BackgroundWork) with
// adjacent-block merging and a stall-detecting progress audit. See
// DESIGN.md §16 for the protocol.
package xen
