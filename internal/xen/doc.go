// Package xen implements the full-fledged VMM substrate Mercury attaches
// and detaches: domains, hypercalls, per-frame ownership/type/count
// accounting with direct-mode paging, event channels, grant-mapped shared
// I/O rings with backend drivers, and a simple domain scheduler. It is a
// from-scratch reimplementation of the Xen 3.0.x mechanisms the paper's
// prototype relies on, reduced to the parts that determine behaviour and
// cost.
package xen
