package xen

import (
	"fmt"

	"repro/internal/hw"
)

// Direct-mode paging (§3.2.2): guest page tables are installed in the
// hardware MMU directly, but every store to them must be validated by the
// VMM. Validation maintains the frame type system: a frame referenced as
// a page table (FrameL1/FrameL2) may never simultaneously be mapped
// writable, so a guest can never forge a mapping. Reference counting
// follows Xen's get_page_type/put_page_type discipline:
//
//   - each present PDE holds one typed FrameL1 ref and one existence ref
//     on the page-table frame it points to;
//   - each present PTE holds one existence ref on the data frame, plus
//     one typed FrameWritable ref when the mapping is writable;
//   - the first typed page-table ref on a frame triggers a full scan of
//     its entries (the expensive part of pinning, and of Mercury's
//     recompute-on-switch, §5.1.2).

// MMUUpdate is one entry store request.
type MMUUpdate struct {
	Table hw.PFN
	Index int
	New   hw.PTE
}

// getTypeFresh takes a typed ref and reports whether this was the 0->1
// transition (which obliges the caller to validate contents).
func (v *VMM) getTypeFresh(pfn hw.PFN, want FrameType) (bool, error) {
	fresh := v.FT.Get(pfn).TypeCount == 0
	if err := v.FT.GetType(pfn, want); err != nil {
		return false, err
	}
	return fresh, nil
}

// chargeOpt charges c only when charging is enabled; the active-tracking
// mirror path (native mode, §5.1.2 "first approach") uses the same
// validation logic with its own small per-op cost charged by the caller.
func chargeOpt(c *hw.CPU, on bool, n hw.Cycles) {
	if on {
		c.Charge(n)
	}
}

// validateL1 takes a typed L1 ref on pt, scanning and referencing its
// entries if this is the first typed ref.
func (v *VMM) validateL1(c *hw.CPU, d *Domain, pt hw.PFN, charge bool) error {
	fresh, err := v.getTypeFresh(pt, FrameL1)
	if err != nil {
		return err
	}
	if !fresh {
		return nil
	}
	chargeOpt(c, charge, v.M.Costs.FrameValidate)
	for i := 0; i < hw.PTEntries; i++ {
		pte := hw.ReadPTE(v.M.Mem, pt, i)
		if !pte.Present() {
			continue
		}
		chargeOpt(c, charge, v.M.Costs.PTValidatePin)
		if err := v.refMapping(d, pte); err != nil {
			// Roll back what we validated so far.
			for j := 0; j < i; j++ {
				if p := hw.ReadPTE(v.M.Mem, pt, j); p.Present() {
					v.unrefMapping(p)
				}
			}
			v.FT.PutType(pt)
			return fmt.Errorf("xen: validating L1 frame %d entry %d: %w", pt, i, err)
		}
	}
	return nil
}

// devalidateL1 drops a typed L1 ref, releasing entry refs when it was the
// last one.
func (v *VMM) devalidateL1(c *hw.CPU, pt hw.PFN, charge bool) {
	last := v.FT.Get(pt).TypeCount == 1
	if last {
		for i := 0; i < hw.PTEntries; i++ {
			pte := hw.ReadPTE(v.M.Mem, pt, i)
			if pte.Present() {
				chargeOpt(c, charge, v.M.Costs.FrameRelease)
				v.unrefMapping(pte)
			}
		}
	}
	v.FT.PutType(pt)
}

// refMapping takes the refs a present leaf entry holds on its target.
func (v *VMM) refMapping(d *Domain, pte hw.PTE) error {
	pfn := pte.Frame()
	if !v.M.Mem.Valid(pfn) {
		return fmt.Errorf("xen: mapping of nonexistent frame %d", pfn)
	}
	fi := v.FT.Get(pfn)
	if d != nil && fi.Owner != d.ID && fi.Owner != DomVMM {
		// Foreign frames are only reachable via grants; the backend path
		// maps those through GrantMap, not page tables.
		return fmt.Errorf("xen: dom%d mapping foreign frame %d (owner dom%d)",
			d.ID, pfn, fi.Owner)
	}
	if pte.Writable() {
		if err := v.FT.GetType(pfn, FrameWritable); err != nil {
			return err
		}
	}
	v.FT.GetRef(pfn)
	return nil
}

// unrefMapping drops the refs a present leaf entry held.
func (v *VMM) unrefMapping(pte hw.PTE) {
	pfn := pte.Frame()
	if pte.Writable() {
		v.FT.PutType(pfn)
	}
	v.FT.PutRef(pfn)
}

// validateL2 takes a typed L2 ref on root, validating referenced L1
// tables on the first ref.
func (v *VMM) validateL2(c *hw.CPU, d *Domain, root hw.PFN, charge bool) error {
	fresh, err := v.getTypeFresh(root, FrameL2)
	if err != nil {
		return err
	}
	if !fresh {
		return nil
	}
	chargeOpt(c, charge, v.M.Costs.FrameValidate)
	for i := 0; i < hw.PTEntries; i++ {
		pde := hw.ReadPTE(v.M.Mem, root, i)
		if !pde.Present() {
			continue
		}
		chargeOpt(c, charge, v.M.Costs.PTValidatePin)
		if err := v.validateL1(c, d, pde.Frame(), charge); err != nil {
			for j := 0; j < i; j++ {
				if p := hw.ReadPTE(v.M.Mem, root, j); p.Present() {
					v.devalidateL1(c, p.Frame(), false)
					v.FT.PutRef(p.Frame())
				}
			}
			v.FT.PutType(root)
			return err
		}
		v.FT.GetRef(pde.Frame())
	}
	return nil
}

// devalidateL2 drops a typed L2 ref.
func (v *VMM) devalidateL2(c *hw.CPU, root hw.PFN, charge bool) {
	last := v.FT.Get(root).TypeCount == 1
	if last {
		chargeOpt(c, charge, v.M.Costs.FrameRelease)
		for i := 0; i < hw.PTEntries; i++ {
			pde := hw.ReadPTE(v.M.Mem, root, i)
			if pde.Present() {
				v.devalidateL1(c, pde.Frame(), charge)
				v.FT.PutRef(pde.Frame())
			}
		}
	}
	v.FT.PutType(root)
}

// pinTable validates and pins a page-directory root (internal; shared by
// the hypercall and the adopt/recompute paths).
func (v *VMM) pinTable(c *hw.CPU, d *Domain, root hw.PFN, charge bool) error {
	if v.injectPinFails.Load() > 0 {
		v.injectPinFails.Add(-1)
		return fmt.Errorf("xen: injected transient failure pinning root %d", root)
	}
	if d.pinnedRoots[root] {
		return fmt.Errorf("xen: dom%d re-pinning root %d", d.ID, root)
	}
	if err := v.validateL2(c, d, root, charge); err != nil {
		return err
	}
	v.FT.GetRef(root)
	v.markPinned(root, true)
	v.traceEmit(c, TrcPin, d, uint64(root))
	d.pinnedRoots[root] = true
	if v.ShadowMode {
		if _, err := v.BuildShadowTree(c, d, root); err != nil {
			return err
		}
	}
	return nil
}

// unpinTable reverses pinTable.
func (v *VMM) unpinTable(c *hw.CPU, d *Domain, root hw.PFN, charge bool) error {
	if !d.pinnedRoots[root] {
		return fmt.Errorf("xen: dom%d unpinning unknown root %d", d.ID, root)
	}
	delete(d.pinnedRoots, root)
	v.markPinned(root, false)
	v.traceEmit(c, TrcUnpin, d, uint64(root))
	if v.ShadowMode {
		v.DropShadowTree(c, d, root)
	}
	v.devalidateL2(c, root, charge)
	v.FT.PutRef(root)
	return nil
}

func (v *VMM) markPinned(root hw.PFN, on bool) {
	v.FT.setPinned(root, on)
}

// applyUpdate validates and applies one entry store (internal).
func (v *VMM) applyUpdate(c *hw.CPU, d *Domain, u MMUUpdate, charge bool) error {
	fi := v.FT.Get(u.Table)
	if fi.TypeCount == 0 || (fi.Type != FrameL1 && fi.Type != FrameL2) {
		return fmt.Errorf("xen: mmu_update to frame %d which is %s, not a page table",
			u.Table, fi.Type)
	}
	if d != nil && fi.Owner != d.ID {
		return fmt.Errorf("xen: dom%d updating foreign page table %d", d.ID, u.Table)
	}
	chargeOpt(c, charge, v.M.Costs.MMUUpdateEntry)
	old := hw.ReadPTE(v.M.Mem, u.Table, u.Index)

	switch fi.Type {
	case FrameL1:
		if u.New.Present() {
			if err := v.refMapping(d, u.New); err != nil {
				return err
			}
		}
		if old.Present() {
			v.unrefMapping(old)
		}
	case FrameL2:
		if u.New.Present() {
			if err := v.validateL1(c, d, u.New.Frame(), charge); err != nil {
				return err
			}
			v.FT.GetRef(u.New.Frame())
		}
		if old.Present() {
			v.devalidateL1(c, old.Frame(), charge)
			v.FT.PutRef(old.Frame())
		}
	}
	hw.WritePTE(v.M.Mem, u.Table, u.Index, u.New)
	if v.ShadowMode && d != nil {
		if err := v.syncShadowEntry(c, d, u); err != nil {
			return err
		}
	}
	if d != nil {
		d.Stats.MMUUpdates.Add(1)
	}
	return nil
}

// --- hypercalls ---

// HypMMUUpdate is the mmu_update hypercall: one world switch validates
// and applies a whole batch — the batching is what keeps paravirtual
// fork/exec within a small factor of native instead of paying a world
// switch per entry.
func (v *VMM) HypMMUUpdate(c *hw.CPU, d *Domain, batch []MMUUpdate) error {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.lockMMU(c)
	defer v.unlockMMU()
	for _, u := range batch {
		if err := v.applyUpdate(c, d, u, true); err != nil {
			return err
		}
	}
	return nil
}

// HypPinTable is MMUEXT_PIN_L2_TABLE: validate a tree and pin its root.
func (v *VMM) HypPinTable(c *hw.CPU, d *Domain, root hw.PFN) error {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.pinTable(c, d, root, true)
}

// HypUnpinTable is MMUEXT_UNPIN_TABLE.
func (v *VMM) HypUnpinTable(c *hw.CPU, d *Domain, root hw.PFN) error {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.unpinTable(c, d, root, true)
}

// newBaseptrLocked installs root as the guest's page-directory base
// (MMU lock held): auto-pin on first use as Xen does, then the
// privileged CR3 load. Shared by HypNewBaseptr, HypContextSwitch and
// the multicall dispatcher.
func (v *VMM) newBaseptrLocked(c *hw.CPU, d *Domain, root hw.PFN) error {
	if !d.pinnedRoots[root] {
		if err := v.pinTable(c, d, root, true); err != nil {
			return err
		}
	}
	hwRoot, err := v.HWRoot(c, d, root)
	if err != nil {
		return err
	}
	c.WriteCR3(hwRoot)
	d.VCPU0().SetCR3(root)
	return nil
}

// HypNewBaseptr is MMUEXT_NEW_BASEPTR: install a pinned root as the
// guest's page-directory base. The VMM performs the privileged CR3 load.
func (v *VMM) HypNewBaseptr(c *hw.CPU, d *Domain, root hw.PFN) error {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.newBaseptrLocked(c, d, root)
}

// HypContextSwitch is the paravirtual context-switch multicall:
// stack_switch plus MMUEXT_NEW_BASEPTR in one world switch, the way
// Xen-Linux batches its __switch_to path.
func (v *VMM) HypContextSwitch(c *hw.CPU, d *Domain, root hw.PFN) error {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.lockMMU(c)
	defer v.unlockMMU()
	c.Charge(v.M.Costs.MemWrite * 2)    // stack switch bookkeeping
	c.Charge(v.M.Costs.VCPUStateSwitch) // segment/LDT/FPU state swap
	return v.newBaseptrLocked(c, d, root)
}

// HypTLBFlush is MMUEXT_TLB_FLUSH_LOCAL.
func (v *VMM) HypTLBFlush(c *hw.CPU, d *Domain) {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	c.TLB.Flush()
	c.Charge(v.M.Costs.TLBFlush)
}

// HypInvlpg is MMUEXT_INVLPG_LOCAL.
func (v *VMM) HypInvlpg(c *hw.CPU, d *Domain, va hw.VirtAddr) {
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	c.TLB.Invalidate(hw.VPNOf(va))
	c.Charge(v.M.Costs.PrivInsn)
}

// --- active tracking (the §5.1.2 "first approach" ablation) ---

// MirrorPTEWrite keeps the frame table in sync with a native-mode direct
// PTE store. The native OS calls it on every page-table write when the
// active-tracking policy is selected; the work costs a few cycles per
// store (the 2–3 % native overhead the paper measured) but makes the
// switch-time recompute unnecessary.
func (v *VMM) MirrorPTEWrite(c *hw.CPU, d *Domain, u MMUUpdate) error {
	c.Charge(v.M.Costs.MirrorUpdate)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.applyUpdate(c, d, u, false)
}

// MirrorPinRoot registers a new root under active tracking.
func (v *VMM) MirrorPinRoot(c *hw.CPU, d *Domain, root hw.PFN) error {
	c.Charge(v.M.Costs.MirrorUpdate)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.pinTable(c, d, root, false)
}

// MirrorUnpinRoot unregisters a root under active tracking.
func (v *VMM) MirrorUnpinRoot(c *hw.CPU, d *Domain, root hw.PFN) error {
	c.Charge(v.M.Costs.MirrorUpdate)
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.unpinTable(c, d, root, false)
}

// --- Mercury attach/detach support ---

// RecomputeFrameInfo rebuilds the (stale) frame table for an adopted
// domain from scratch by scanning and pinning every supplied root. This
// is the paper's preferred "re-compute and synchronize during a mode
// switch" strategy and accounts for most of the 0.22 ms native->virtual
// switch time (§5.1.2, §7.4).
//
// The operation is transactional: if any root fails validation (the OS
// was in an inconsistent state, e.g. a page-table page reachable
// writable), every root pinned so far is unpinned again and the frame
// table is left exactly as before — the substrate for Mercury's
// failure-resistant mode switch.
func (v *VMM) RecomputeFrameInfo(c *hw.CPU, d *Domain, roots []hw.PFN) error {
	v.lockMMU(c)
	defer v.unlockMMU()
	return v.recomputeLocked(c, d, roots)
}

// recomputeLocked is the serial pin loop; the caller holds the MMU lock.
func (v *VMM) recomputeLocked(c *hw.CPU, d *Domain, roots []hw.PFN) error {
	var pinned []hw.PFN
	for _, r := range roots {
		if err := v.pinTable(c, d, r, true); err != nil {
			for _, p := range pinned {
				if uerr := v.unpinTable(c, d, p, false); uerr != nil {
					panic(fmt.Sprintf("xen: recompute rollback: %v", uerr))
				}
			}
			return fmt.Errorf("xen: recompute: %w", err)
		}
		pinned = append(pinned, r)
	}
	return nil
}

// ReleaseFrameInfo forgets the accounting for an adopted domain when the
// VMM detaches: cheap, which is why switching back to native mode takes
// only ~0.06 ms (§7.4).
func (v *VMM) ReleaseFrameInfo(c *hw.CPU, d *Domain) {
	v.lockMMU(c)
	defer v.unlockMMU()
	for root := range d.pinnedRoots {
		delete(d.pinnedRoots, root)
		v.markPinned(root, false)
		if v.ShadowMode {
			v.DropShadowTree(c, d, root)
		}
		v.devalidateL2(c, root, true)
		v.FT.PutRef(root)
	}
}

// EmulatePTEWrite is the trap-and-emulation path for a page-table store
// (§5.3: "non-performance-critical sensitive code is not included in a
// VO and relies instead on trap-and-emulation to commit the effect"):
// the deprivileged kernel's direct store to a read-only page-table page
// faults into the VMM, which decodes and validates it — dearer than an
// explicit hypercall, but requiring no kernel modification at the call
// site.
func (v *VMM) EmulatePTEWrite(c *hw.CPU, d *Domain, u MMUUpdate) error {
	// The faulting store: #PF entry, instruction decode, emulation.
	c.Charge(v.M.Costs.FaultEntry + v.M.Costs.WorldSwitch + v.M.Costs.FaultBounce)
	v.Stats.FaultsHandled.Add(1)
	if d != nil {
		d.Stats.FaultBounces.Add(1)
	}
	v.lockMMU(c)
	defer v.unlockMMU()
	prev := c.SetMode(hw.PL0)
	err := v.applyUpdate(c, d, u, true)
	c.SetMode(prev)
	c.Charge(v.M.Costs.FaultExit)
	return err
}
