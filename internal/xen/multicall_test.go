package xen

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

// TestMulticallChargesOneEntryPerBatch verifies the batching economics:
// a batch pays WorldSwitch + HypercallBase once, and each extra op costs
// only the VMM's per-op dispatch. Deferred TLB flushes make the marginal
// cost exact — the coalesced hardware flush is charged once per batch no
// matter how many ops request it.
func TestMulticallChargesOneEntryPerBatch(t *testing.T) {
	v, d, c := testVMM(t)
	costs := v.M.Costs

	run := func(n int) hw.Cycles {
		var mc Multicall
		for i := 0; i < n; i++ {
			mc.AddTLBFlush()
		}
		start := c.Now()
		if err := v.HypMulticall(c, d, &mc); err != nil {
			t.Fatal(err)
		}
		if mc.Applied != n {
			t.Fatalf("Applied = %d, want %d", mc.Applied, n)
		}
		return c.Now() - start
	}
	c1, c8 := run(1), run(8)
	if got, want := c8-c1, 7*costs.MulticallPerOp; got != want {
		t.Fatalf("marginal cost of 7 extra ops = %d, want %d (MulticallPerOp only)", got, want)
	}
	if c1 <= costs.WorldSwitch+costs.HypercallBase {
		t.Fatalf("batch of 1 charged %d, at or below the bare entry cost", c1)
	}
}

// TestMulticallTelemetry checks the batch counters: one multicall, one
// VMM entry (the hypercall counter), and the op count on both the VMM
// and the domain.
func TestMulticallTelemetry(t *testing.T) {
	v, d, c := testVMM(t)
	var mc Multicall
	mc.AddTLBFlush()
	mc.AddTLBFlush()
	mc.AddTLBFlush()
	dm0, do0 := d.Stats.Multicalls.Load(), d.Stats.MulticallOps.Load()
	vm0, vo0 := v.Stats.Multicalls.Load(), v.Stats.MulticallOps.Load()
	h0 := v.Stats.Hypercalls.Load()
	if err := v.HypMulticall(c, d, &mc); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats.Multicalls.Load() - dm0; got != 1 {
		t.Errorf("domain multicalls += %d, want 1", got)
	}
	if got := d.Stats.MulticallOps.Load() - do0; got != 3 {
		t.Errorf("domain multicall ops += %d, want 3", got)
	}
	if got := v.Stats.Multicalls.Load() - vm0; got != 1 {
		t.Errorf("vmm multicalls += %d, want 1", got)
	}
	if got := v.Stats.MulticallOps.Load() - vo0; got != 3 {
		t.Errorf("vmm multicall ops += %d, want 3", got)
	}
	if got := v.Stats.Hypercalls.Load() - h0; got != 1 {
		t.Errorf("vmm entries += %d, want 1 (the whole batch is one entry)", got)
	}
}

// TestMulticallCoalescesTLBFlushes: any number of MCTLBFlush requests in
// one batch produce at most one hardware flush, executed at batch end.
func TestMulticallCoalescesTLBFlushes(t *testing.T) {
	v, d, c := testVMM(t)
	var mc Multicall
	for i := 0; i < 5; i++ {
		mc.AddTLBFlush()
	}
	f0 := c.TLB.Flushes
	if err := v.HypMulticall(c, d, &mc); err != nil {
		t.Fatal(err)
	}
	if got := c.TLB.Flushes - f0; got != 1 {
		t.Fatalf("5 flush requests caused %d hardware flushes, want 1", got)
	}
}

// TestMulticallNewBaseptrCancelsFlush: a CR3 load later in the batch
// satisfies an earlier deferred flush — no extra hardware flush runs.
func TestMulticallNewBaseptrCancelsFlush(t *testing.T) {
	v, d, c := testVMM(t)
	tb1, _ := buildTree(t, v, d, 1)
	tb2, _ := buildTree(t, v, d, 1)

	flushes := func(build func(*Multicall)) uint64 {
		var mc Multicall
		build(&mc)
		f0 := c.TLB.Flushes
		if err := v.HypMulticall(c, d, &mc); err != nil {
			t.Fatal(err)
		}
		return c.TLB.Flushes - f0
	}
	bare := flushes(func(mc *Multicall) { mc.AddNewBaseptr(tb1.Root) })
	withFlush := flushes(func(mc *Multicall) {
		mc.AddTLBFlush()
		mc.AddNewBaseptr(tb2.Root)
	})
	if withFlush != bare {
		t.Fatalf("flush+new_baseptr caused %d flushes, new_baseptr alone %d — the CR3 load should cancel the pending flush", withFlush, bare)
	}
}

// TestMulticallAppliedPrefixOnError: execution stops at the first
// failing op, Applied reports the applied prefix, the error names the
// op, and a deferred flush requested by an applied op still runs.
func TestMulticallAppliedPrefixOnError(t *testing.T) {
	v, d, c := testVMM(t)
	tb1, _ := buildTree(t, v, d, 1)
	tb2, _ := buildTree(t, v, d, 1)
	stray := d.Frames.Alloc() // never pinned: unpinning it must fail

	var mc Multicall
	mc.AddTLBFlush()
	mc.AddPin(tb1.Root)
	mc.AddUnpin(stray)
	mc.AddPin(tb2.Root) // never reached

	f0 := c.TLB.Flushes
	err := v.HypMulticall(c, d, &mc)
	if err == nil {
		t.Fatal("unpin of a never-pinned frame succeeded")
	}
	if !strings.Contains(err.Error(), "op 2 (unpin)") {
		t.Errorf("error does not name the failing op: %v", err)
	}
	if mc.Applied != 2 {
		t.Errorf("Applied = %d, want 2 (flush request + first pin)", mc.Applied)
	}
	if !d.HasPinned(tb1.Root) {
		t.Error("applied prefix lost: first pin not recorded")
	}
	if d.HasPinned(tb2.Root) {
		t.Error("op after the failure executed")
	}
	if got := c.TLB.Flushes - f0; got != 1 {
		t.Errorf("deferred flush on the error path: %d hardware flushes, want 1 — a partial batch must not leave stale translations live", got)
	}
}

// TestMulticallResetKeepsCapacityDropsRefs: Reset empties the batch
// without shrinking the backing array, and clears the Traps/Timer
// references so a warmed batch does not pin garbage.
func TestMulticallResetKeepsCapacityDropsRefs(t *testing.T) {
	var mc Multicall
	mc.AddSetTrapTable([]TrapEntry{{Vector: 3}})
	mc.AddBindVirqTimer(func(*hw.CPU) {})
	mc.Applied = 1
	backing := mc.Ops
	capBefore := cap(mc.Ops)

	mc.Reset()
	if mc.Len() != 0 || mc.Applied != 0 {
		t.Fatalf("after Reset: len %d, applied %d", mc.Len(), mc.Applied)
	}
	if cap(mc.Ops) != capBefore {
		t.Fatalf("Reset shrank capacity %d -> %d", capBefore, cap(mc.Ops))
	}
	if backing[0].Traps != nil || backing[1].Timer != nil {
		t.Fatal("Reset left Traps/Timer references in the backing array")
	}
}

// TestMulticallEnqueueFlushAllocFree is the hot-path allocation gate for
// the multicall layer: a warmed batch enqueues, executes, and resets
// with zero heap allocations.
func TestMulticallEnqueueFlushAllocFree(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 1)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	// Find a live L1 slot and reuse its exact value: a same-value store
	// is always valid, so the loop body is pure mechanism.
	var l1 hw.PFN
	for i := 0; i < hw.PTEntries; i++ {
		if pde := hw.ReadPTE(v.M.Mem, tb.Root, i); pde.Present() {
			l1 = pde.Frame()
			break
		}
	}
	idx, entry := -1, hw.PTE(0)
	for i := 0; i < hw.PTEntries; i++ {
		if pte := hw.ReadPTE(v.M.Mem, l1, i); pte.Present() {
			idx, entry = i, pte
			break
		}
	}
	if idx < 0 {
		t.Fatal("no live L1 entry found")
	}

	mc := Multicall{Ops: make([]MCOp, 0, 8)}
	allocs := testing.AllocsPerRun(100, func() {
		mc.AddUpdate(MMUUpdate{Table: l1, Index: idx, New: entry})
		mc.AddTLBFlush()
		if err := v.HypMulticall(c, d, &mc); err != nil {
			panic(err)
		}
		mc.Reset()
	})
	if allocs != 0 {
		t.Fatalf("multicall enqueue+flush allocates %.1f per run, want 0", allocs)
	}
}
