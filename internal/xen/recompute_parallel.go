package xen

import (
	"fmt"
	"sync"

	"repro/internal/hw"
)

// Parallel frame recompute: the attach-time FrameTable refill sharded
// across the CPUs parked at the §5.4 switch rendezvous. While the APs
// spin in apRendezvousISR the guest is fully quiescent, so every shard
// can walk a disjoint subset of the page-table trees read-only and
// accumulate its frame deltas privately; the coordinating CPU then
// merges the deltas under the MMU lock with conflict detection.
//
// Cycle accounting models the parallelism: instead of the serial sum,
// the coordinator charges max-of-shards plus a per-frame merge term, so
// attach latency becomes sub-linear in CPU count for multi-tree working
// sets. The per-shard walk costs use exactly the serial validate charges
// (FrameValidate per fresh table, PTValidatePin per present entry), so a
// one-shard walk degenerates to the serial cost.
//
// Correctness gate: on success the resulting FrameTable is bit-identical
// to a serial RecomputeFrameInfo over the same roots. Any cross-shard
// overlap on a page-table frame (two shards both believing they must
// validate the same L1/L2, or a typed-claim mix) makes the shard-local
// freshness decisions unsound, so the merge detects it and falls back to
// the serial loop, which is canonical for both success and error.

// shardDelta is one shard's privately accumulated frame accounting.
type shardDelta struct {
	order  []hw.PFN
	m      map[hw.PFN]*deltaEntry
	cycles hw.Cycles
	err    error
}

// deltaEntry is a shard's claim on one frame.
type deltaEntry struct {
	typ       FrameType
	typeAdd   uint32
	refAdd    uint32
	validated bool // this shard performed the 0->1 entry scan
	pinned    bool
}

// mergeCell is one frame's accumulated cross-shard claim in the VMM's
// reusable merge scratch (epoch-stamped: stale cells are dead, not
// swept).
type mergeCell struct {
	epoch       uint64
	typ         FrameType
	typedShards uint32 // shards contributing a typed claim
	typeAdd     uint32
	refAdd      uint32
	pinned      bool
	nonWritable bool // some typed claim was L1/L2, not FrameWritable
}

// shardWalk walks a subset of roots against the frozen base table.
type shardWalk struct {
	v     *VMM
	d     *Domain
	delta *shardDelta
}

func (w *shardWalk) entry(pfn hw.PFN) *deltaEntry {
	e := w.delta.m[pfn]
	if e == nil {
		e = &deltaEntry{}
		w.delta.m[pfn] = e
		w.delta.order = append(w.delta.order, pfn)
	}
	return e
}

// getType mirrors FrameTable.GetType against base state plus this
// shard's delta, reporting whether this was the 0->1 transition.
func (w *shardWalk) getType(pfn hw.PFN, want FrameType) (bool, error) {
	base := w.v.FT.Get(pfn)
	e := w.entry(pfn)
	count := base.TypeCount + e.typeAdd
	cur := base.Type
	if e.typeAdd > 0 {
		cur = e.typ
	}
	if count != 0 && cur != want {
		return false, errType(pfn, cur, count, want)
	}
	e.typ = want
	e.typeAdd++
	return count == 0, nil
}

// refMapping mirrors VMM.refMapping into the shard delta.
func (w *shardWalk) refMapping(pte hw.PTE) error {
	pfn := pte.Frame()
	if !w.v.M.Mem.Valid(pfn) {
		return fmt.Errorf("xen: mapping of nonexistent frame %d", pfn)
	}
	owner := w.v.FT.Get(pfn).Owner
	if w.d != nil && owner != w.d.ID && owner != DomVMM {
		return fmt.Errorf("xen: dom%d mapping foreign frame %d (owner dom%d)",
			w.d.ID, pfn, owner)
	}
	if pte.Writable() {
		if _, err := w.getType(pfn, FrameWritable); err != nil {
			return err
		}
	}
	w.entry(pfn).refAdd++
	return nil
}

// validateL1 mirrors VMM.validateL1, tallying cycles instead of
// charging and recording refs in the delta instead of the table.
func (w *shardWalk) validateL1(pt hw.PFN) error {
	fresh, err := w.getType(pt, FrameL1)
	if err != nil {
		return err
	}
	if !fresh {
		return nil
	}
	w.delta.m[pt].validated = true
	w.delta.cycles += w.v.M.Costs.FrameValidate
	for i := 0; i < hw.PTEntries; i++ {
		pte := hw.ReadPTE(w.v.M.Mem, pt, i)
		if !pte.Present() {
			continue
		}
		w.delta.cycles += w.v.M.Costs.PTValidatePin
		if err := w.refMapping(pte); err != nil {
			return fmt.Errorf("xen: validating L1 frame %d entry %d: %w", pt, i, err)
		}
	}
	return nil
}

// validateL2 mirrors VMM.validateL2.
func (w *shardWalk) validateL2(root hw.PFN) error {
	fresh, err := w.getType(root, FrameL2)
	if err != nil {
		return err
	}
	if !fresh {
		return nil
	}
	w.delta.m[root].validated = true
	w.delta.cycles += w.v.M.Costs.FrameValidate
	for i := 0; i < hw.PTEntries; i++ {
		pde := hw.ReadPTE(w.v.M.Mem, root, i)
		if !pde.Present() {
			continue
		}
		w.delta.cycles += w.v.M.Costs.PTValidatePin
		if err := w.validateL1(pde.Frame()); err != nil {
			return err
		}
		w.entry(pde.Frame()).refAdd++
	}
	return nil
}

// pinRoot validates one root tree into the delta.
func (w *shardWalk) pinRoot(root hw.PFN) error {
	if err := w.validateL2(root); err != nil {
		return err
	}
	e := w.entry(root)
	e.refAdd++
	e.pinned = true
	return nil
}

// RecomputeFrameInfoAuto dispatches between the serial and the sharded
// parallel recompute. Shadow paging keeps shadow trees in lockstep with
// pinning and stays on the serial path (it is UP-only anyway), as does
// any working set too small to shard.
func (v *VMM) RecomputeFrameInfoAuto(c *hw.CPU, d *Domain, roots []hw.PFN, workers int) error {
	if workers >= 2 && len(roots) >= 2 && !v.ShadowMode {
		return v.RecomputeFrameInfoParallel(c, d, roots, workers)
	}
	return v.RecomputeFrameInfo(c, d, roots)
}

// RecomputeFrameInfoParallel is RecomputeFrameInfo with the tree walks
// sharded across workers CPUs. It has the same transactional contract:
// on error the frame table and pin state are untouched.
func (v *VMM) RecomputeFrameInfoParallel(c *hw.CPU, d *Domain, roots []hw.PFN, workers int) error {
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers < 2 || v.ShadowMode {
		return v.RecomputeFrameInfo(c, d, roots)
	}
	v.lockMMU(c)
	defer v.unlockMMU()

	// Injected transient pin failures and re-pin misuse surface before
	// any shard runs, mirroring the serial loop's first-root behaviour.
	if v.injectPinFails.Load() > 0 {
		v.injectPinFails.Add(-1)
		return fmt.Errorf("xen: recompute: injected transient failure pinning root %d", roots[0])
	}
	for _, r := range roots {
		if d.pinnedRoots[r] {
			return fmt.Errorf("xen: recompute: dom%d re-pinning root %d", d.ID, r)
		}
	}

	// Deterministic round-robin partition in caller order.
	shardRoots := make([][]hw.PFN, workers)
	for i, r := range roots {
		shardRoots[i%workers] = append(shardRoots[i%workers], r)
	}
	deltas := make([]*shardDelta, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		deltas[i] = &shardDelta{m: make(map[hw.PFN]*deltaEntry)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &shardWalk{v: v, d: d, delta: deltas[i]}
			for _, r := range shardRoots[i] {
				if err := w.pinRoot(r); err != nil {
					deltas[i].err = err
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// The walks ran concurrently: charge the slowest shard, successful
	// or not — a failed parallel attach still paid for the walk.
	start := c.Now()
	var maxCycles hw.Cycles
	for _, sd := range deltas {
		if sd.cycles > maxCycles {
			maxCycles = sd.cycles
		}
	}
	if h := v.tel(); h != nil {
		ids := shardCPUIDs(v.M, c, workers)
		for i, sd := range deltas {
			h.col.Tracer.Complete(ids[i], start, start+sd.cycles,
				"switch/recompute-shard", uint64(len(shardRoots[i])))
		}
	}
	c.Charge(maxCycles)
	for _, sd := range deltas {
		if sd.err != nil {
			return fmt.Errorf("xen: recompute: %w", sd.err)
		}
	}

	// Merge: fold every shard's claims into the reusable epoch-stamped
	// cell array (no per-call maps — the merge is on the attach hot
	// path) and detect cross-shard conflicts. Two shards may both add
	// FrameWritable refs to a shared data frame (pure counters,
	// commutative); any other overlap on a typed claim means a
	// page-table frame is reachable from more than one shard's trees,
	// where shard-local freshness decisions diverge from the serial
	// walk — redo serially, which is canonical.
	if v.mergeCells == nil {
		v.mergeCells = make([]mergeCell, v.FT.NumFrames())
		v.mergeOrder = make([]hw.PFN, 0, v.FT.NumFrames())
	}
	v.mergeEpoch++
	v.mergeOrder = v.mergeOrder[:0]
	for _, sd := range deltas {
		for _, pfn := range sd.order {
			cell := &v.mergeCells[pfn]
			if cell.epoch != v.mergeEpoch {
				*cell = mergeCell{epoch: v.mergeEpoch}
				v.mergeOrder = append(v.mergeOrder, pfn)
			}
			e := sd.m[pfn]
			if e.typeAdd > 0 {
				cell.typ = e.typ
				cell.typedShards++
				if e.typ != FrameWritable {
					cell.nonWritable = true
				}
			}
			cell.typeAdd += e.typeAdd
			cell.refAdd += e.refAdd
			if e.pinned {
				cell.pinned = true
			}
		}
	}
	for _, pfn := range v.mergeOrder {
		cell := &v.mergeCells[pfn]
		if cell.typedShards >= 2 && cell.nonWritable {
			v.Stats.RecomputeFallbacks.Add(1)
			return v.recomputeLocked(c, d, roots)
		}
	}

	// Apply the merged deltas in frame order, then publish pins in
	// caller order, exactly as the serial loop would have.
	sortPFNs(v.mergeOrder)
	mergeStart := c.Now()
	for _, pfn := range v.mergeOrder {
		cell := &v.mergeCells[pfn]
		fi := v.FT.Get(pfn)
		if cell.typeAdd > 0 {
			fi.Type = cell.typ
			fi.TypeCount += cell.typeAdd
		}
		fi.TotalRefs += cell.refAdd
		if cell.pinned {
			fi.Pinned = true
		}
		v.FT.Set(pfn, fi)
	}
	c.Charge(v.M.Costs.FrameMerge * hw.Cycles(len(v.mergeOrder)))
	if h := v.tel(); h != nil {
		h.col.Tracer.Complete(c.ID, mergeStart, c.Now(),
			"switch/recompute-merge", uint64(len(v.mergeOrder)))
	}
	for _, r := range roots {
		d.pinnedRoots[r] = true
		v.traceEmit(c, TrcPin, d, uint64(r))
	}
	return nil
}

// shardCPUIDs assigns shard i to a CPU for span attribution: shard 0 to
// the coordinating CPU, the rest to the parked APs in ID order.
func shardCPUIDs(m *hw.Machine, c *hw.CPU, workers int) []int {
	ids := []int{c.ID}
	for _, cpu := range m.CPUs {
		if len(ids) == workers {
			break
		}
		if cpu.ID != c.ID {
			ids = append(ids, cpu.ID)
		}
	}
	for len(ids) < workers {
		ids = append(ids, c.ID)
	}
	return ids
}
