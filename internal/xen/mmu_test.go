package xen

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/pgtable"
)

// testVMM builds an active VMM with one unprivileged domain.
func testVMM(t *testing.T) (*VMM, *Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	d, err := v.CreateDomain("guest", hw.PFN(m.Frames.Available()), false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, d)
	return v, d, c
}

// buildTree creates a small page-table tree in d's frames with n mapped
// pages, returning the tables and mapped data frames.
func buildTree(t *testing.T, v *VMM, d *Domain, n int) (*pgtable.Tables, []hw.PFN) {
	t.Helper()
	tb, err := pgtable.New(v.M.Mem, d.Frames.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	wr := pgtable.DirectWriter(v.M.Mem)
	var data []hw.PFN
	for i := 0; i < n; i++ {
		pfn := d.Frames.Alloc()
		data = append(data, pfn)
		va := hw.VirtAddr(0x0800_0000 + i<<hw.PageShift)
		if err := tb.Map(va, pfn, hw.PTEWrite|hw.PTEUser, d.Frames.Alloc, wr); err != nil {
			t.Fatal(err)
		}
	}
	return tb, data
}

func TestPinValidatesTree(t *testing.T) {
	v, d, c := testVMM(t)
	tb, data := buildTree(t, v, d, 5)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if !d.HasPinned(tb.Root) {
		t.Fatal("root not recorded as pinned")
	}
	ri := v.FT.Get(tb.Root)
	if ri.Type != FrameL2 || !ri.Pinned {
		t.Fatalf("root info: %+v", ri)
	}
	for _, pfn := range data {
		fi := v.FT.Get(pfn)
		if fi.Type != FrameWritable || fi.TotalRefs != 1 {
			t.Fatalf("data frame %d: %+v", pfn, fi)
		}
	}
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinReleasesEverything(t *testing.T) {
	v, d, c := testVMM(t)
	tb, data := buildTree(t, v, d, 5)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.HypUnpinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	for _, pfn := range append(data, tb.Root) {
		fi := v.FT.Get(pfn)
		if fi.TypeCount != 0 || fi.TotalRefs != 0 || fi.Pinned {
			t.Fatalf("frame %d not released: %+v", pfn, fi)
		}
	}
}

func TestMMUUpdateOnUnvalidatedTableFails(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 1)
	// Not pinned: no typed ref -> updates must be rejected.
	err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: tb.Root, Index: 0, New: 0}})
	if err == nil {
		t.Fatal("update to unvalidated table accepted")
	}
}

func TestMMUUpdateRejectsWritablePageTable(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 2)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	// Find the L1 frame and try to map it writable: the central safety
	// property of direct-mode paging.
	s, ok := tb.ExistingSlot(0x0800_0000)
	if !ok {
		t.Fatal("missing slot")
	}
	bad := hw.MakePTE(s.Table, hw.PTEPresent|hw.PTEWrite|hw.PTEUser)
	err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: s.Table, Index: 9, New: bad}})
	if err == nil {
		t.Fatal("page table mapped writable")
	}
	// Read-only mapping of the same frame is fine.
	ro := hw.MakePTE(s.Table, hw.PTEPresent|hw.PTEUser)
	if err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: s.Table, Index: 9, New: ro}}); err != nil {
		t.Fatal(err)
	}
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMMUUpdateRefMovement(t *testing.T) {
	v, d, c := testVMM(t)
	tb, data := buildTree(t, v, d, 2)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	s, _ := tb.ExistingSlot(0x0800_0000)
	// Replace the first mapping with a fresh frame.
	fresh := d.Frames.Alloc()
	err := v.HypMMUUpdate(c, d, []MMUUpdate{{
		Table: s.Table, Index: s.Index,
		New: hw.MakePTE(fresh, hw.PTEPresent|hw.PTEWrite|hw.PTEUser),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fi := v.FT.Get(data[0]); fi.TotalRefs != 0 || fi.TypeCount != 0 {
		t.Fatalf("old frame still referenced: %+v", fi)
	}
	if fi := v.FT.Get(fresh); fi.TotalRefs != 1 || fi.Type != FrameWritable {
		t.Fatalf("new frame not referenced: %+v", fi)
	}
}

func TestMMUUpdateForeignFrameRejected(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 1)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	s, _ := tb.ExistingSlot(0x0800_0000)
	// A frame owned by the VMM itself must be unreachable.
	vmmLo, _ := v.Reserved.Range()
	bad := hw.MakePTE(vmmLo, hw.PTEPresent|hw.PTEWrite|hw.PTEUser)
	// Owner is DomVMM, which refMapping treats as shared-read; make a
	// frame owned by another domain instead.
	other := v.FT
	_ = other
	v.FT.SetOwner(vmmLo, 42)
	if err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: s.Table, Index: 7, New: bad}}); err == nil {
		t.Fatal("foreign frame mapped")
	}
}

func TestNewBaseptrAutoPins(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 1)
	if err := v.HypNewBaseptr(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if c.ReadCR3() != tb.Root {
		t.Fatal("CR3 not installed")
	}
	if !d.HasPinned(tb.Root) {
		t.Fatal("auto-pin missing")
	}
	if d.VCPU0().CR3() != tb.Root {
		t.Fatal("vcpu CR3 not recorded")
	}
}

// The central §5.1.2 property: recompute-on-switch reproduces exactly
// the accounting active tracking maintains.
func TestRecomputeMatchesActiveTracking(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 8)
	tb2, _ := buildTree(t, v, d, 3)

	// Active path: pin both trees, do some live updates via mirror.
	if err := v.MirrorPinRoot(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.MirrorPinRoot(c, d, tb2.Root); err != nil {
		t.Fatal(err)
	}
	fresh := d.Frames.Alloc()
	s, _ := tb.ExistingSlot(0x0800_0000)
	if err := v.MirrorPTEWrite(c, d, MMUUpdate{Table: s.Table, Index: s.Index,
		New: hw.MakePTE(fresh, hw.PTEPresent|hw.PTEUser)}); err != nil {
		t.Fatal(err)
	}
	active := v.FT.Clone()

	// Recompute path: drop everything, rebuild from the same tables.
	v.ReleaseFrameInfo(c, d)
	if err := v.RecomputeFrameInfo(c, d, []hw.PFN{tb.Root, tb2.Root}); err != nil {
		t.Fatal(err)
	}
	if err := v.FT.Equal(active); err != nil {
		t.Fatalf("recompute diverges from active tracking: %v", err)
	}
}

func TestContextSwitchHypercall(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 1)
	if err := v.HypContextSwitch(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if c.ReadCR3() != tb.Root {
		t.Fatal("context switch did not load CR3")
	}
}

func TestReleaseFrameInfoCheap(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 64)
	before := c.Now()
	if err := v.RecomputeFrameInfo(c, d, []hw.PFN{tb.Root}); err != nil {
		t.Fatal(err)
	}
	attach := c.Now() - before
	before = c.Now()
	v.ReleaseFrameInfo(c, d)
	detach := c.Now() - before
	if detach >= attach {
		t.Fatalf("detach (%d) not cheaper than attach (%d)", detach, attach)
	}
}
