package xen

import (
	"fmt"
	"sync"

	"repro/internal/hw"
)

// The dirty-frame journal is Mercury's third frame-tracking policy,
// between the §5.1.2 extremes of recompute-on-switch (zero native
// overhead, expensive attach) and active tracking (every native PTE
// store mirrored through the VMM, cheap attach):
//
// At detach the VMM keeps its frame table frozen as a snapshot instead
// of releasing it, and the native kernel's PTE-write path appends
// (table, index, old, new) records to a bounded ring — a few cycles per
// store, far below the active-tracking mirror cost. On re-attach only
// the journaled slots are revalidated against the snapshot and replayed
// as frame-accounting deltas. Anything the journal cannot represent —
// ring overflow, a structural change (a new or dropped page-table
// frame, a write to a non-L1 table), or a first attach with no snapshot
// — degrades to the full recompute path, so correctness never depends
// on the journal being complete: an incomplete journal only costs the
// fallback.
//
// Replay is transactional and self-validating: every condensed slot is
// checked against what memory actually contains (a corrupted or forged
// record mismatches and fails the attach, feeding the failure-resistant
// switch's rollback), and the accumulated deltas are validated against
// the snapshot's type system before any of them is applied.

// JournalEntry is one recorded native PTE store.
type JournalEntry struct {
	Table hw.PFN
	Index int
	Old   hw.PTE
	New   hw.PTE
}

// JournalStats counts journal activity (read under the journal lock,
// exposed by value via StatsSnapshot).
type JournalStats struct {
	Appends      uint64 // entries recorded
	Overflows    uint64 // detach epochs that overflowed the ring
	Structural   uint64 // detach epochs degraded by structural changes
	Replays      uint64 // re-attaches served by replay
	ReplaySlots  uint64 // condensed slots replayed
	ReplayErrors uint64 // replays rejected by validation
	Fallbacks    uint64 // re-attaches that fell back to full recompute
}

// DirtyJournal is the bounded ring of PTE stores made while detached.
type DirtyJournal struct {
	mu         sync.Mutex
	ft         *FrameTable
	capacity   int
	entries    []JournalEntry
	recording  bool // armed by a detach, disarmed by the next attach
	overflowed bool
	structural bool
	snapshot   bool // the frozen frame table matches the arm point
	stats      JournalStats

	// Reusable replay scratch (guarded by mu, sized lazily on first
	// use): slot condensation runs through an epoch-stamped
	// open-addressing hash instead of a per-call map, and the frame
	// deltas accumulate in NumFrames-indexed arrays. Replay therefore
	// performs zero heap allocation after warm-up — the attach path's
	// AllocsPerRun gate depends on it.
	slots      []journalSlot
	slotHash   []slotHashCell
	hashEpoch  uint64
	deltaRefs  []int64
	deltaWr    []int64
	deltaEpoch []uint64
	deltaSeen  uint64
	deltaOrder []hw.PFN
	finals     []int32
}

// slotHashCell is one open-addressing cell of the condensation hash:
// epoch-stamped so clearing between replays is a counter bump, not a
// sweep.
type slotHashCell struct {
	epoch uint64
	key   uint64
	slot  int32
}

// DefaultJournalEntries is the default ring capacity.
const DefaultJournalEntries = 8192

// EnableJournal installs a dirty-frame journal on the VMM and returns
// it. capacity <= 0 selects the default ring size.
func (v *VMM) EnableJournal(capacity int) *DirtyJournal {
	if capacity <= 0 {
		capacity = DefaultJournalEntries
	}
	v.journal = &DirtyJournal{
		ft:       v.FT,
		capacity: capacity,
		entries:  make([]JournalEntry, 0, capacity),
	}
	return v.journal
}

// Journal returns the installed journal, or nil.
func (v *VMM) Journal() *DirtyJournal { return v.journal }

// Arm starts a fresh journaling epoch at detach time: the current frame
// table becomes the frozen snapshot and subsequent native PTE stores
// are recorded.
func (j *DirtyJournal) Arm() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = j.entries[:0]
	j.recording = true
	j.overflowed = false
	j.structural = false
	j.snapshot = true
}

// Disarm stops recording and invalidates the snapshot (the frame table
// is live again, or is about to be rebuilt from scratch).
func (j *DirtyJournal) Disarm() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = j.entries[:0]
	j.recording = false
	j.snapshot = false
}

// Recording reports whether an epoch is armed.
func (j *DirtyJournal) Recording() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recording
}

// Len returns the number of buffered entries.
func (j *DirtyJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// StatsSnapshot returns a copy of the counters.
func (j *DirtyJournal) StatsSnapshot() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Record appends one native PTE store to the ring. Stores to anything
// but a snapshot-known L1 table (a fresh table the snapshot never
// validated, or a directory) are structural: the journal cannot replay
// them and degrades the epoch to full-recompute.
func (j *DirtyJournal) Record(table hw.PFN, idx int, old, new hw.PTE) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.recording || j.structural || j.overflowed {
		return
	}
	if j.ft.Get(table).Type != FrameL1 {
		j.structural = true
		j.stats.Structural++
		return
	}
	if len(j.entries) >= j.capacity {
		j.overflowed = true
		j.stats.Overflows++
		return
	}
	j.entries = append(j.entries, JournalEntry{Table: table, Index: idx, Old: old, New: new})
	j.stats.Appends++
}

// RecordStructural marks the epoch as containing a change the journal
// cannot replay (root registered or released, table freed).
func (j *DirtyJournal) RecordStructural() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.recording || j.structural {
		return
	}
	j.structural = true
	j.stats.Structural++
}

// CheckConsistent verifies the journal's own bookkeeping invariants
// (part of the system-wide invariant sweep).
func (j *DirtyJournal) CheckConsistent() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.entries) > j.capacity {
		return fmt.Errorf("xen: journal holds %d entries over capacity %d",
			len(j.entries), j.capacity)
	}
	if j.recording && !j.snapshot {
		return fmt.Errorf("xen: journal recording without a frozen snapshot")
	}
	return nil
}

// CorruptEntryPick flips bits in the New field of a buffered entry that
// is the final store to its slot, so replay's memory-verification must
// reject it. The victim is chosen with pick (fault injection only).
// The returned closure restores the entry.
func (j *DirtyJournal) CorruptEntryPick(pick func(n int) int) (func(), error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.entries) == 0 {
		return nil, fmt.Errorf("xen: journal empty, nothing to corrupt")
	}
	// Final-store entries: a corrupted superseded entry would be masked
	// by slot condensation. Condense through the shared scratch and
	// collect each slot's last entry index, sorted ascending — the same
	// candidate order the old map-based scan produced, which seeded
	// chaos campaigns replay deterministically.
	j.condenseLocked()
	j.finals = j.finals[:0]
	for si := range j.slots {
		j.finals = append(j.finals, j.slots[si].last)
	}
	sortInt32s(j.finals)
	victim := int(j.finals[pick(len(j.finals))])
	saved := j.entries[victim]
	j.entries[victim].New = saved.New ^ hw.PTE(1<<hw.PageShift) // point one frame over
	return func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if victim < len(j.entries) {
			j.entries[victim] = saved
		}
	}, nil
}

// JournalDetach is the journal policy's detach path: instead of
// releasing the frame accounting it freezes it and arms the ring.
// Detach cost is a constant arm charge — cheaper even than the
// touched-proportional release.
func (v *VMM) JournalDetach(c *hw.CPU, d *Domain) {
	j := v.journal
	if j == nil {
		v.ReleaseFrameInfo(c, d)
		return
	}
	c.Charge(v.M.Costs.FrameRelease)
	j.Arm()
}

// journalSlot is one condensed slot: the first recorded old value and
// the last recorded new value of a (table, index) pair, plus the index
// of the last entry that stored to it (fault injection targets final
// stores; superseded ones are masked by condensation).
type journalSlot struct {
	table    hw.PFN
	idx      int
	firstOld hw.PTE
	lastNew  hw.PTE
	last     int32
}

// ensureScratch sizes the reusable replay scratch once. The hash is a
// power of two at least twice the ring capacity, so its load factor
// stays at or below one half.
func (j *DirtyJournal) ensureScratch() {
	if j.slotHash != nil {
		return
	}
	size := 2
	for size < 2*j.capacity {
		size <<= 1
	}
	j.slotHash = make([]slotHashCell, size)
	j.slots = make([]journalSlot, 0, j.capacity)
	n := j.ft.NumFrames()
	j.deltaRefs = make([]int64, n)
	j.deltaWr = make([]int64, n)
	j.deltaEpoch = make([]uint64, n)
	j.deltaOrder = make([]hw.PFN, 0, 2*j.capacity)
	j.finals = make([]int32, 0, j.capacity)
}

// condenseLocked rebuilds j.slots from j.entries in first-touch order
// (j.mu held). Allocation-free after warm-up: slots are reused and the
// hash clears by epoch bump.
func (j *DirtyJournal) condenseLocked() {
	j.ensureScratch()
	j.slots = j.slots[:0]
	j.hashEpoch++
	mask := uint64(len(j.slotHash) - 1)
	for ei := range j.entries {
		e := &j.entries[ei]
		key := uint64(e.Table)<<16 | uint64(e.Index)
		pos := (key * 0x9E3779B97F4A7C15 >> 32) & mask
		for {
			cell := &j.slotHash[pos]
			if cell.epoch != j.hashEpoch {
				*cell = slotHashCell{epoch: j.hashEpoch, key: key, slot: int32(len(j.slots))}
				j.slots = append(j.slots, journalSlot{
					table: e.Table, idx: e.Index,
					firstOld: e.Old, lastNew: e.New, last: int32(ei),
				})
				break
			}
			if cell.key == key {
				s := &j.slots[cell.slot]
				s.lastNew = e.New
				s.last = int32(ei)
				break
			}
			pos = (pos + 1) & mask
		}
	}
}

// deltaTouch marks pfn as carrying a delta this replay, zeroing its
// accumulators on first touch.
func (j *DirtyJournal) deltaTouch(pfn hw.PFN) {
	if j.deltaEpoch[pfn] != j.deltaSeen {
		j.deltaEpoch[pfn] = j.deltaSeen
		j.deltaRefs[pfn] = 0
		j.deltaWr[pfn] = 0
		j.deltaOrder = append(j.deltaOrder, pfn)
	}
}

// JournalReattach is the journal policy's attach path: replay the
// journaled slots against the frozen snapshot, or fall back to a full
// recompute when the epoch degraded (first attach, overflow, structural
// change). workers is forwarded to the recompute on the fallback path.
func (v *VMM) JournalReattach(c *hw.CPU, d *Domain, roots []hw.PFN, workers int) error {
	j := v.journal
	if j == nil {
		return v.RecomputeFrameInfoAuto(c, d, roots, workers)
	}
	j.mu.Lock()
	canReplay := j.snapshot && j.recording && !j.overflowed && !j.structural
	if !canReplay {
		j.stats.Fallbacks++
		j.mu.Unlock()
		return v.journalFallback(c, d, roots, workers)
	}
	err := v.replayLocked(c, d, j)
	if err != nil {
		// Nothing was applied and the ring is intact: after the switch's
		// rollback, a retry (with the fault undone) can still replay.
		j.stats.ReplayErrors++
		j.mu.Unlock()
		return err
	}
	j.stats.Replays++
	j.entries = j.entries[:0]
	j.recording = false
	j.snapshot = false
	j.mu.Unlock()
	return nil
}

// journalFallback rebuilds the accounting from scratch: drop the stale
// snapshot (charged per touched frame, not per table entry) and run the
// full recompute. The stale snapshot must never be walk-released —
// memory has moved on since it was taken.
func (v *VMM) journalFallback(c *hw.CPU, d *Domain, roots []hw.PFN, workers int) error {
	j := v.journal
	j.Disarm()
	v.lockMMU(c)
	for root := range d.pinnedRoots {
		delete(d.pinnedRoots, root)
	}
	v.FT.ResetCharged(c, v.M.Costs.FrameRelease)
	v.unlockMMU()
	return v.RecomputeFrameInfoAuto(c, d, roots, workers)
}

// replayLocked verifies and applies the journal (j.mu held). Phase 1
// condenses entries per slot and checks each slot's final value against
// memory — the corruption detector. Phase 2 accumulates the frame
// deltas and validates them against the snapshot's type system. Phase 3
// applies; nothing is written before everything has validated.
//
// All working state lives in the journal's reusable scratch, so replay
// allocates nothing after its first run.
func (v *VMM) replayLocked(c *hw.CPU, d *Domain, j *DirtyJournal) error {
	v.lockMMU(c)
	defer v.unlockMMU()

	// Phase 1: condense, in first-touch order.
	j.condenseLocked()
	c.Charge(v.M.Costs.JournalReplayEntry * hw.Cycles(len(j.slots)))
	j.stats.ReplaySlots += uint64(len(j.slots))

	j.deltaSeen++
	j.deltaOrder = j.deltaOrder[:0]
	for si := range j.slots {
		s := &j.slots[si]
		fi := v.FT.Get(s.table)
		if fi.Type != FrameL1 || fi.TypeCount == 0 {
			return fmt.Errorf("xen: journal replay: frame %d recorded as a table but snapshot says %s",
				s.table, fi.Type)
		}
		if cur := hw.ReadPTE(v.M.Mem, s.table, s.idx); cur != s.lastNew {
			return fmt.Errorf("xen: journal replay: table %d[%d] holds %#x, journal says %#x",
				s.table, s.idx, uint64(cur), uint64(s.lastNew))
		}
		if s.firstOld.Present() {
			pfn := s.firstOld.Frame()
			j.deltaTouch(pfn)
			j.deltaRefs[pfn]--
			if s.firstOld.Writable() {
				j.deltaWr[pfn]--
			}
		}
		if s.lastNew.Present() {
			pfn := s.lastNew.Frame()
			if !v.M.Mem.Valid(pfn) {
				return fmt.Errorf("xen: journal replay: mapping of nonexistent frame %d", pfn)
			}
			if owner := v.FT.Get(pfn).Owner; owner != d.ID && owner != DomVMM {
				return fmt.Errorf("xen: journal replay: dom%d mapping foreign frame %d (owner dom%d)",
					d.ID, pfn, owner)
			}
			j.deltaTouch(pfn)
			j.deltaRefs[pfn]++
			if s.lastNew.Writable() {
				j.deltaWr[pfn]++
			}
		}
	}

	// Phase 2: validate deltas against the snapshot.
	for _, pfn := range j.deltaOrder {
		fi := v.FT.Get(pfn)
		wr, refs := j.deltaWr[pfn], j.deltaRefs[pfn]
		if wr > 0 {
			// A new writable mapping: only legal on frames that are
			// untyped or already writable — never on a live page table.
			if fi.TypeCount > 0 && fi.Type != FrameWritable {
				return errType(pfn, fi.Type, fi.TypeCount, FrameWritable)
			}
		}
		if wr < 0 {
			if fi.Type != FrameWritable || int64(fi.TypeCount) < -wr {
				return fmt.Errorf("xen: journal replay: dropping %d writable refs from frame %d (%s, count %d)",
					-wr, pfn, fi.Type, fi.TypeCount)
			}
		}
		if refs < 0 && int64(fi.TotalRefs) < -refs {
			return fmt.Errorf("xen: journal replay: ref underflow on frame %d", pfn)
		}
	}

	// Phase 3: apply in frame order.
	apply := j.deltaOrder
	sortPFNs(apply)
	for _, pfn := range apply {
		fi := v.FT.Get(pfn)
		fi.TotalRefs = uint32(int64(fi.TotalRefs) + j.deltaRefs[pfn])
		tc := int64(fi.TypeCount)
		if wr := j.deltaWr[pfn]; wr != 0 {
			tc += wr
			if tc > 0 {
				fi.Type = FrameWritable
			} else {
				fi.Type = FrameNone
			}
		}
		fi.TypeCount = uint32(tc)
		v.FT.Set(pfn, fi)
	}
	return nil
}

// sortPFNs sorts in place. Heapsort: in-place, allocation-free, and
// O(n log n) even on the adversarial orders chaos campaigns produce —
// the insertion sort it replaced went quadratic at full-ring sizes.
func sortPFNs(p []hw.PFN) {
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftPFNs(p, i, n)
	}
	for i := n - 1; i > 0; i-- {
		p[0], p[i] = p[i], p[0]
		siftPFNs(p, 0, i)
	}
}

func siftPFNs(p []hw.PFN, root, n int) {
	for {
		ch := 2*root + 1
		if ch >= n {
			return
		}
		if ch+1 < n && p[ch+1] > p[ch] {
			ch++
		}
		if p[root] >= p[ch] {
			return
		}
		p[root], p[ch] = p[ch], p[root]
		root = ch
	}
}

// sortInt32s is sortPFNs for entry indices.
func sortInt32s(p []int32) {
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftInt32s(p, i, n)
	}
	for i := n - 1; i > 0; i-- {
		p[0], p[i] = p[i], p[0]
		siftInt32s(p, 0, i)
	}
}

func siftInt32s(p []int32, root, n int) {
	for {
		ch := 2*root + 1
		if ch >= n {
			return
		}
		if ch+1 < n && p[ch+1] > p[ch] {
			ch++
		}
		if p[root] >= p[ch] {
			return
		}
		p[root], p[ch] = p[ch], p[root]
		root = ch
	}
}
