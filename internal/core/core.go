package core
