package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// spareNode builds the healthy destination VMM.
func spareNode(t *testing.T) (*xen.VMM, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 128 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, dom0)
	return v, dom0, c
}

func TestPredictorThresholds(t *testing.T) {
	fp := DefaultPredictor()
	s := hw.NewSensorBank()
	if err := fp.Predict(s); err != nil {
		t.Fatalf("nominal sensors predicted failure: %v", err)
	}
	cases := []struct {
		sensor string
		value  float64
	}{
		{hw.SensorCPUTempC, 99},
		{hw.SensorFanRPM, 500},
		{hw.SensorCoreVolt, 0.9},
		{hw.SensorPSUVolt, 14.0},
	}
	for _, tc := range cases {
		s := hw.NewSensorBank()
		s.Set(tc.sensor, tc.value)
		if err := fp.Predict(s); err == nil {
			t.Errorf("%s=%v not predicted as failure", tc.sensor, tc.value)
		}
	}
}

func TestEvacuateOnFailureFullFlow(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	dstV, dstDom0, _ := spareNode(t)
	hw.Wire(mc.M.NIC, dstV.M.NIC, hw.Gigabit())

	// Host a guest with live state.
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "job", 512)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := domU.Frames.Range()
	for i := 0; i < 128; i++ {
		mc.M.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0xBEEF0000+i))
	}

	// Healthy: no evacuation.
	fp := DefaultPredictor()
	rep, err := mc.EvacuateOnFailure(c, fp, dstV, dstDom0, migrate.DefaultLiveConfig())
	if err != nil || rep != nil {
		t.Fatalf("healthy node evacuated: %v %v", rep, err)
	}

	// Overheat: evacuate, verify payload, node released to native.
	mc.M.Sensors.Set(hw.SensorCPUTempC, 92)
	rep, err = mc.EvacuateOnFailure(c, fp, dstV, dstDom0, migrate.DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Evacuated) != 1 || !rep.NodeReleased {
		t.Fatalf("report: %+v", rep)
	}
	if mc.Mode() != ModeNative {
		t.Fatal("node not released to native mode")
	}
	// Find the landed domain and verify its memory.
	var landed *xen.Domain
	for _, d := range dstV.Domains {
		if d.Name == "job-migrated" {
			landed = d
		}
	}
	if landed == nil {
		t.Fatal("migrated domain missing on the spare")
	}
	lo2, _ := landed.Frames.Range()
	for i := 0; i < 128; i++ {
		if got := dstV.M.Mem.ReadWord((lo2 + hw.PFN(i)).Addr()); got != uint32(0xBEEF0000+i) {
			t.Fatalf("frame %d payload = %#x", i, got)
		}
	}
}

func TestEvacuateFromNativeModeAttachesFirst(t *testing.T) {
	// A node in native mode must self-virtualize before it can migrate
	// anything — the §6.5 flow starting from full speed.
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	dstV, dstDom0, _ := spareNode(t)
	hw.Wire(mc.M.NIC, dstV.M.NIC, hw.Gigabit())

	mc.M.Sensors.Set(hw.SensorFanRPM, 100)
	rep, err := mc.EvacuateOnFailure(c, DefaultPredictor(), dstV, dstDom0,
		migrate.DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Nothing was hosted, but the node attached, swept, and released.
	if rep == nil || len(rep.Evacuated) != 0 || !rep.NodeReleased {
		t.Fatalf("report: %+v", rep)
	}
	if mc.Stats.Attaches.Load() != 1 || mc.Stats.Detaches.Load() != 1 {
		t.Fatal("evacuation did not attach/detach exactly once")
	}
	if mc.Mode() != ModeNative {
		t.Fatal("node left virtualized")
	}
}
