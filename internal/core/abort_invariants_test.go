package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/guest"
)

// The abort paths get the same verdict the commit paths do: after any
// rolled-back switch or aborted update, the full invariant oracle must
// pass — and SwitchSync now runs it itself, joining any breach onto
// the abort's own error.

// TestFailedSwitchAbortVerified: a transiently failing pin hypercall
// kills the attach mid-way; the rollback must restore a state the
// oracle accepts, so the reported error carries no invariant breach.
func TestFailedSwitchAbortVerified(t *testing.T) {
	mc := newMercury(t, 2, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(8, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 8, true)

		mc.VMM.InjectPinFailures(1)
		err := mc.SwitchSync(p.CPU(), ModePartialVirtual)
		mc.VMM.InjectPinFailures(0)
		if err == nil {
			panic("switch survived the injected pin failure")
		}
		// The oracle ran inside SwitchSync and found nothing: the abort
		// error is the injection alone, with no joined breach.
		if strings.Contains(err.Error(), "post-rollback invariants") {
			panic(fmt.Sprintf("rollback left inconsistent state: %v", err))
		}
		if verr := mc.CheckInvariants(p.CPU()); verr != nil {
			panic(fmt.Sprintf("invariants after rollback: %v", verr))
		}
		// The failure is not fatal: the retry commits.
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	done := make(chan struct{})
	go func() { k.Run(mc.M.CPUs[1]); close(done) }()
	k.Run(boot)
	<-done
}

// TestMidAbortFaultInvariantsGreen: the fault that killed the switch
// stays armed while the rollback unwinds (the mid-abort fault), and
// the system must still verify clean before the fault is ever lifted —
// the rollback may not lean on the undo.
func TestMidAbortFaultInvariantsGreen(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(8, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 8, true)

		undo, err := p.AS.CorruptPageTableMapping()
		if err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err == nil {
			panic("switch succeeded on a corrupted kernel")
		}
		// The corruption is still armed: the rollback must have
		// restored everything the oracle checks regardless.
		if verr := mc.CheckInvariants(p.CPU()); verr != nil {
			panic(fmt.Sprintf("invariants with fault still armed: %v", verr))
		}
		undo()
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	k.Run(boot)
}

// TestLiveUpdateAbortPathsVerified drives both LiveUpdate abort paths:
// a failing Apply (detach-and-verify) and a failing Validate (stay
// attached, verify in place).
func TestLiveUpdateAbortPathsVerified(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	_, err := mc.LiveUpdate(c, KernelPatch{
		Name:  "bad-apply",
		Apply: func(k *guest.Kernel) error { return fmt.Errorf("nope") },
	})
	if err == nil {
		t.Fatal("failed apply reported success")
	}
	if strings.Contains(err.Error(), "post-abort invariants") {
		t.Fatalf("apply abort left inconsistent state: %v", err)
	}
	if mc.Mode() != ModeNative {
		t.Fatal("failed update left the VMM attached")
	}
	if verr := mc.CheckInvariants(c); verr != nil {
		t.Fatalf("invariants after apply abort: %v", verr)
	}

	_, err = mc.LiveUpdate(c, KernelPatch{
		Name:     "bad-validate",
		Apply:    func(k *guest.Kernel) error { return nil },
		Validate: func(k *guest.Kernel) error { return fmt.Errorf("rejected") },
	})
	if err == nil {
		t.Fatal("failed validate reported success")
	}
	if strings.Contains(err.Error(), "post-abort invariants") {
		t.Fatalf("validate abort left inconsistent state: %v", err)
	}
	// Validate failure deliberately keeps the VMM resident for
	// inspection; the attached system verified clean, and the operator
	// (this test) detaches.
	if mc.Mode() == ModeNative {
		t.Fatal("validate failure should keep the VMM attached")
	}
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if verr := mc.CheckInvariants(c); verr != nil {
		t.Fatalf("invariants after operator detach: %v", verr)
	}
}
