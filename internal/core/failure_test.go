package core

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
)

// TestFailureResistantSwitch exercises the §8 extension: a mode switch
// requested while the OS is in an inconsistent state (a page-table page
// reachable writable) fails validation, rolls back completely, and
// leaves the system running in native mode; after the state is repaired
// the switch succeeds.
func TestFailureResistantSwitch(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(8, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 8, true)

		undo, err := p.AS.CorruptPageTableMapping()
		if err != nil {
			panic(err)
		}

		// The switch must fail — and not take the system down.
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err == nil {
			panic("switch succeeded on a corrupted kernel")
		}
		if mc.Mode() != ModeNative {
			panic("failed switch changed the mode")
		}
		if mc.VMM.Active {
			panic("failed switch left the VMM active")
		}
		if mc.Stats.FailedSwitches.Load() != 1 {
			panic("failure not counted")
		}
		if mc.LastSwitchError() == nil {
			panic("failure not recorded")
		}
		// Hardware control state rolled back to the kernel's.
		if p.CPU().IDTR != k.IDT {
			panic("hardware IDT not restored after rollback")
		}
		// Frame accounting fully unwound.
		if err := mc.VMM.FT.CheckInvariants(); err != nil {
			panic(err)
		}

		// The system is still fully functional in native mode.
		p.Touch(base, 8, true)

		// Repair, then also prove process creation still works (forking
		// *with* the corruption in place would clone the bad mapping —
		// the corruption is the kernel's problem, not the switch's).
		undo()
		p.Fork("child", func(cp *guest.Proc) { cp.Exit(0) })
		p.Wait()
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if mc.LastSwitchError() != nil {
			panic("stale error after successful switch")
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
		p.Munmap(base)
	})
	k.Run(boot)

	// After detach every frame's accounting is zero: the failed attempt
	// leaked nothing.
	for pfn := hw.PFN(0); pfn < mc.M.Mem.NumFrames(); pfn++ {
		fi := mc.VMM.FT.Get(pfn)
		if fi.TypeCount != 0 || fi.TotalRefs != 0 || fi.Pinned {
			t.Fatalf("frame %d retains accounting: %+v", pfn, fi)
		}
	}
}

// TestFailedSwitchRollbackUnderSMP runs the same failure path with a
// second CPU in the rendezvous.
func TestFailedSwitchRollbackUnderSMP(t *testing.T) {
	mc := newMercury(t, 2, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(4, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 4, true)
		undo, err := p.AS.CorruptPageTableMapping()
		if err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err == nil {
			panic("corrupted switch succeeded")
		}
		undo()
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	done := make(chan struct{})
	go func() { k.Run(mc.M.CPUs[1]); close(done) }()
	k.Run(boot)
	<-done

	// Every CPU ends on the kernel's tables.
	for _, c := range mc.M.CPUs {
		if c.IDTR != k.IDT {
			t.Fatalf("cpu%d IDT not the kernel's", c.ID)
		}
	}
	if got := mc.Stats.FailedSwitches.Load(); got != 1 {
		t.Fatalf("failed switches = %d", got)
	}
}
