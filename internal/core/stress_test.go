package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
)

// TestSwitchStressUnderPTChurn drives repeated attach/detach cycles
// while a forked worker churns page tables on the other CPU, for every
// tracking policy — the seeded race-stress companion to the chaos
// campaigns, meant to run under -race. The switches interleave with
// mmap/touch/munmap and mprotect traffic, so the recompute shards, the
// active mirror, and the journal (including its structural-degradation
// fallback) all see concurrent native-mode activity.
func TestSwitchStressUnderPTChurn(t *testing.T) {
	for _, policy := range []TrackingPolicy{TrackRecompute, TrackActive, TrackJournal} {
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			mc := newMercury(t, 2, policy)
			k := mc.K
			boot := mc.M.BootCPU()

			var failed error
			k.Spawn(boot, "driver", guest.DefaultImage("driver"), func(p *guest.Proc) {
				p.Fork("churn", func(cp *guest.Proc) {
					for i := 0; i < 10; i++ {
						pages := 4 + rng.Intn(8)
						base := cp.Mmap(pages, guest.ProtRead|guest.ProtWrite, true)
						cp.Touch(base, pages, true)
						cp.Mprotect(base, guest.ProtRead)
						cp.Mprotect(base, guest.ProtRead|guest.ProtWrite)
						cp.Munmap(base)
					}
					cp.Exit(0)
				})
				steady := p.Mmap(16, guest.ProtRead|guest.ProtWrite, true)
				for i := 0; i < 6; i++ {
					if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
						failed = fmt.Errorf("attach %d: %w", i, err)
						return
					}
					p.Touch(steady, 16, true)
					if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
						failed = fmt.Errorf("detach %d: %w", i, err)
						return
					}
					// Native-mode leaf rewrites: journaled dirty traffic.
					p.Mprotect(steady, guest.ProtRead)
					p.Mprotect(steady, guest.ProtRead|guest.ProtWrite)
				}
				p.Wait()
				if err := mc.CheckInvariants(p.CPU()); err != nil {
					failed = err
				}
			})
			done := make(chan struct{})
			go func() {
				k.Run(mc.M.CPUs[1])
				close(done)
			}()
			k.Run(boot)
			<-done
			if failed != nil {
				t.Fatal(failed)
			}
			if mc.Mode() != ModeNative {
				t.Fatalf("final mode %v", mc.Mode())
			}
		})
	}
}

// TestJournalPolicySwitchRoundTrip covers the journal policy through the
// full engine path: first attach falls back, a dirtied re-attach
// replays, and the frame accounting stays invariant-clean throughout.
func TestJournalPolicySwitchRoundTrip(t *testing.T) {
	mc := newMercury(t, 1, TrackJournal)
	k := mc.K
	boot := mc.M.BootCPU()
	j := mc.VMM.Journal()
	if j == nil {
		t.Fatal("journal policy did not install a journal")
	}

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(40, guest.ProtRead|guest.ProtWrite, true)
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
		// ~10% dirty: pure leaf rewrites, no structural change.
		p.Mprotect(base, guest.ProtRead)
		p.Mprotect(base, guest.ProtRead|guest.ProtWrite)
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.CheckInvariants(p.CPU()); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	k.Run(boot)

	st := j.StatsSnapshot()
	if st.Fallbacks == 0 {
		t.Fatalf("first attach should fall back: %+v", st)
	}
	if st.Replays == 0 {
		t.Fatalf("dirtied re-attach should replay: %+v", st)
	}
	if err := mc.CheckInvariants(boot); err != nil {
		t.Fatal(err)
	}
}

// TestJournalPolicyRejectsShadowPaging: the ring records direct-paging
// stores; the combination with shadow mode is refused at construction.
func TestJournalPolicyRejectsShadowPaging(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
	if _, err := New(Config{Machine: m, Policy: TrackJournal, ShadowPaging: true}); err == nil {
		t.Fatal("journal policy with shadow paging accepted")
	}
}
