package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// CheckInvariants verifies the whole system is in a consistent quiescent
// state for its current mode — the oracle chaos campaigns consult after
// every fault/heal/switch step. It is meant to be called from
// orchestration code (a running process, no switch in flight); a nil
// return means every layer agrees on the mode:
//
//   - engine: no half-committed switch, VO refcount quiesced (§5.1.1);
//   - mode vs. VO vs. VMM activation (§4.2);
//   - per-CPU descriptor-table registers and kernel segment privilege
//     match the mode (§5.1.3);
//   - the VMM's frame accounting is internally consistent, and fully
//     released while native under the recompute policy (§5.1.2);
//   - domain states: the standing identity is running, and a native node
//     hosts no live domains (§6.3);
//   - scheduler integrity and cached selectors on sleeping threads'
//     kernel stacks carry the current kernel privilege level (§5.1.2);
//   - a timer interrupt is armed somewhere (the OS cannot lose its tick);
//   - the kernel's trap table serves every required vector;
//   - no LAPIC has silently dropped a vector.
func (mc *Mercury) CheckInvariants(c *hw.CPU) error {
	mode := mc.Mode()

	// Engine quiescence. The VO refcount may be transiently held by an
	// interrupt handler on another CPU; give it bounded time to drain.
	if p := mc.pending.Load(); p != -1 {
		return fmt.Errorf("invariant: switch to %v still pending", Mode(p))
	}
	drained := false
	for i := 0; i < 10000; i++ {
		if mc.K.VO().Refs() == 0 {
			drained = true
			break
		}
		c.Charge(20)
	}
	if !drained {
		return fmt.Errorf("invariant: VO refcount stuck at %d", mc.K.VO().Refs())
	}

	// Mode vs. virtualization object vs. VMM activation.
	virtual := mode != ModeNative
	if got := mc.K.VO().Virtualized(); got != virtual {
		return fmt.Errorf("invariant: mode %v but VO %q (virtualized=%v)",
			mode, mc.K.VO().Name(), got)
	}
	if mc.VMM.Active != virtual {
		return fmt.Errorf("invariant: mode %v but VMM active=%v", mode, mc.VMM.Active)
	}

	// Per-CPU hardware tables and kernel segment privilege.
	wantGDT, wantIDT := mc.K.GDT, mc.K.IDT
	if virtual {
		wantGDT, wantIDT = mc.VMM.GDT, mc.VMM.IDT
	}
	for _, cpu := range mc.M.CPUs {
		if cpu.GDTR != wantGDT {
			return fmt.Errorf("invariant: cpu%d GDTR is %v in mode %v", cpu.ID, cpu.GDTR, mode)
		}
		if cpu.IDTR != wantIDT {
			return fmt.Errorf("invariant: cpu%d IDTR is %q in mode %v", cpu.ID, cpu.IDTR.Name, mode)
		}
	}
	wantPL := uint8(hw.PL0)
	if virtual {
		wantPL = hw.PL1
	}
	if dpl := mc.K.GDT.Entries[hw.GDTKernelCode].DPL; dpl != wantPL {
		return fmt.Errorf("invariant: kernel code DPL %d in mode %v (want %d)", dpl, mode, wantPL)
	}

	// Frame accounting (§5.1.2).
	if err := mc.VMM.FT.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant: %w", err)
	}
	if !virtual && mc.Policy == TrackRecompute {
		// The journal policy is exempt: it deliberately keeps the frame
		// table (pins included) frozen as its detached snapshot.
		for pfn := 0; pfn < mc.VMM.FT.NumFrames(); pfn++ {
			if fi := mc.VMM.FT.Get(hw.PFN(pfn)); fi.Pinned {
				return fmt.Errorf("invariant: frame %d still pinned while native", pfn)
			}
		}
	}
	if mc.Policy == TrackJournal {
		j := mc.VMM.Journal()
		if j == nil {
			return fmt.Errorf("invariant: journal policy selected but no journal installed")
		}
		if err := j.CheckConsistent(); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}

	// Domain states.
	if mc.Dom.State != xen.DomRunning {
		return fmt.Errorf("invariant: standing domain in state %v", mc.Dom.State)
	}
	if mc.VMM.Domains[mc.Dom.ID] != mc.Dom {
		return fmt.Errorf("invariant: standing domain not registered with the VMM")
	}
	if !virtual {
		for _, d := range mc.HostedDomains() {
			if d.State != xen.DomShutdown {
				return fmt.Errorf("invariant: dom%d (%s) live while native", d.ID, d.Name)
			}
		}
	}

	// Scheduler integrity and cached selectors (§5.1.2): every sleeping
	// thread's saved kernel selectors must carry the current kernel PL.
	if err := mc.K.CheckRunqueue(); err != nil {
		return fmt.Errorf("invariant: %w", err)
	}
	kpl := mc.K.KernelPL()
	for _, p := range mc.K.SleepingProcs(c) {
		for _, f := range p.SavedFrames {
			if f.CS.Index() == hw.GDTKernelCode && f.CS.RPL() != kpl {
				return fmt.Errorf("invariant: proc %d (%s) cached CS at RPL %d (kernel at %d)",
					p.Pid, p.Name, f.CS.RPL(), kpl)
			}
			if f.SS.Index() == hw.GDTKernelData && f.SS.RPL() != kpl {
				return fmt.Errorf("invariant: proc %d (%s) cached SS at RPL %d (kernel at %d)",
					p.Pid, p.Name, f.SS.RPL(), kpl)
			}
		}
	}

	// The tick must survive every fault: some CPU has a timer armed.
	armed := false
	for _, cpu := range mc.M.CPUs {
		if _, ok := cpu.LAPIC.NextTimerDeadline(); ok {
			armed = true
			break
		}
	}
	if !armed {
		return fmt.Errorf("invariant: no LAPIC timer armed — the OS lost its tick")
	}

	// Required kernel trap gates.
	for _, vec := range []int{hw.VecPageFault, hw.VecTimer, hw.VecDisk, hw.VecNIC,
		hw.VecReschedIPI, hw.VecModeSwitch, hw.VecModeSwitchAP} {
		if !mc.K.IDT.Get(vec).Present {
			return fmt.Errorf("invariant: kernel IDT gate %d missing", vec)
		}
	}

	// Interrupt delivery: no LAPIC silently dropped a vector.
	for _, cpu := range mc.M.CPUs {
		if n := cpu.LAPIC.DroppedCount(); n != 0 {
			return fmt.Errorf("invariant: cpu%d dropped %d interrupt(s)", cpu.ID, n)
		}
	}
	return nil
}
