package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
)

// SMP mode-switch coordination (§5.4): the control processor (CP, the
// one that received the mode-switch request) notifies the other
// processors with IPIs. Each processor signals readiness by increasing a
// shared count and spins on a shared flag; the CP sets the flag after
// performing the global switch, at which point every AP reloads its own
// per-CPU control state for the new mode and acknowledges completion.
type rendezvousState struct {
	ready    atomic.Int32
	released atomic.Bool
	done     atomic.Int32
	target   atomic.Int32
}

// rendezvous gathers all other CPUs. The returned closure releases them
// after the CP has committed the switch; it blocks until every AP has
// reloaded its local state.
func (mc *Mercury) rendezvous(c *hw.CPU, target Mode) func() {
	n := int32(len(mc.M.CPUs) - 1)
	if n <= 0 {
		return func() {}
	}
	st := &mc.smp
	st.ready.Store(0)
	st.done.Store(0)
	st.released.Store(false)
	st.target.Store(int32(target))

	for _, other := range mc.M.CPUs {
		if other.ID != c.ID {
			c.SendIPI(other.ID, hw.VecModeSwitchAP)
		}
	}
	// Wait for every AP to check in.
	for st.ready.Load() < n {
		c.Charge(20)
		runtime.Gosched()
	}
	return func() {
		st.released.Store(true)
		for st.done.Load() < n {
			c.Charge(20)
			runtime.Gosched()
		}
	}
}

// apRendezvousISR runs on each application processor when the CP's IPI
// arrives: report ready, hold until released, then reload local state.
func (mc *Mercury) apRendezvousISR(c *hw.CPU, f *hw.TrapFrame) {
	st := &mc.smp
	sp := obs.Begin(mc.telCol(), c.ID, c.Now(), "switch/ap-rendezvous")
	c.Charge(mc.M.Costs.IPIDeliver)
	mc.step(c, StepAPPark, Mode(st.target.Load()))
	st.ready.Add(1)
	for !st.released.Load() {
		c.Clk.Advance(20) // spin with interrupts off
		runtime.Gosched()
	}
	// Local per-CPU reload for the new mode.
	target := Mode(st.target.Load())
	if target == ModeNative {
		c.Lgdt(mc.K.GDT)
		c.Lidt(mc.K.IDT)
	} else {
		c.Lgdt(mc.VMM.GDT)
		c.Lidt(mc.VMM.IDT)
		mc.VMM.SetCurrent(c, mc.Dom)
	}
	c.Charge(mc.M.Costs.StateReload)
	patchFramePL(f, plFor(flip(target)), plFor(target))
	mc.step(c, StepAPResume, target)
	sp.EndArg(c.Now(), uint64(target))
	st.done.Add(1)
}

// plFor maps a mode to its kernel privilege level.
func plFor(m Mode) uint8 {
	if m == ModeNative {
		return hw.PL0
	}
	return hw.PL1
}

// flip returns the mode on the other side of a transition (only the
// kernel PL matters here).
func flip(m Mode) Mode {
	if m == ModeNative {
		return ModePartialVirtual
	}
	return ModeNative
}
