package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
)

// newMercuryObs builds a Mercury system with a telemetry collector
// installed before construction, so boot-time instrumentation (the vo
// adapters) registers into it.
func newMercuryObs(t *testing.T, ncpu int) (*Mercury, *obs.Collector) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: ncpu})
	col := obs.New(ncpu)
	m.SetTelemetry(col)
	mc, err := New(Config{Machine: m, Policy: TrackRecompute})
	if err != nil {
		t.Fatal(err)
	}
	return mc, col
}

// phaseSums walks a trace for successful roots named rootName and
// returns the summed root duration plus the summed duration of their
// direct child phase spans.
func phaseSums(spans []obs.Span, rootName string) (rootTotal, phaseTotal uint64, rootCount int) {
	roots := map[uint64]bool{}
	for _, s := range spans {
		if s.Name == rootName && s.Arg == 0 && s.Kind() == obs.SpanDur {
			roots[s.ID] = true
			rootTotal += s.Dur()
			rootCount++
		}
	}
	for _, s := range spans {
		if roots[s.Parent] && s.Kind() == obs.SpanDur {
			phaseTotal += s.Dur()
		}
	}
	return rootTotal, phaseTotal, rootCount
}

// TestSwitchSpanDecomposition is the acceptance check for the span
// tracer: the per-phase breakdown of every mode switch must sum to the
// end-to-end switch time within 1%, in both directions, UP and SMP.
func TestSwitchSpanDecomposition(t *testing.T) {
	for _, ncpu := range []int{1, 2} {
		mc, col := newMercuryObs(t, ncpu)
		c := mc.M.BootCPU()
		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			t.Fatal(err)
		}
		if err := mc.SwitchSync(c, ModeNative); err != nil {
			t.Fatal(err)
		}
		spans := col.Tracer.Spans()

		for _, tc := range []struct {
			root string
			last uint64
		}{
			{"switch/attach", mc.Stats.LastAttachCyc.Load()},
			{"switch/detach", mc.Stats.LastDetachCyc.Load()},
		} {
			rootTotal, phaseTotal, n := phaseSums(spans, tc.root)
			if n != 1 {
				t.Fatalf("ncpu=%d %s: %d roots", ncpu, tc.root, n)
			}
			// The root opens at the instant the switch's cycle
			// accounting starts, so it must agree with Stats exactly.
			if rootTotal != tc.last {
				t.Fatalf("ncpu=%d %s: root %d cycles, stats %d",
					ncpu, tc.root, rootTotal, tc.last)
			}
			if phaseTotal == 0 {
				t.Fatalf("ncpu=%d %s: no phase spans", ncpu, tc.root)
			}
			diff := float64(rootTotal) - float64(phaseTotal)
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.01*float64(rootTotal) {
				t.Fatalf("ncpu=%d %s: phases %d vs root %d (%.2f%% apart)",
					ncpu, tc.root, phaseTotal, rootTotal,
					diff/float64(rootTotal)*100)
			}
		}

		// The ordered attach phases of §5.1.3 all appear.
		byName := map[string]int{}
		for _, s := range spans {
			byName[s.Name]++
		}
		for _, want := range []string{
			"phase/state-reload", "phase/frame-recompute",
			"phase/segment-pl-flip", "phase/interrupt-rebind",
			"phase/vo-relocate", "phase/frame-release",
			"switch/rendezvous-gather", "switch/rendezvous-release",
		} {
			if byName[want] == 0 {
				t.Fatalf("ncpu=%d: no %s span", ncpu, want)
			}
		}
		if ncpu > 1 && byName["switch/ap-rendezvous"] == 0 {
			t.Fatal("SMP switch recorded no AP rendezvous spans")
		}

		// The same switches feed the metrics side.
		attCyc := col.Registry.Histogram("core", "attach_cycles")
		detCyc := col.Registry.Histogram("core", "detach_cycles")
		if attCyc.Count() != 1 || detCyc.Count() != 1 {
			t.Fatalf("ncpu=%d: hist counts %d/%d", ncpu, attCyc.Count(), detCyc.Count())
		}
		if attCyc.Sum() != mc.Stats.LastAttachCyc.Load() {
			t.Fatalf("ncpu=%d: attach hist sum %d, stats %d",
				ncpu, attCyc.Sum(), mc.Stats.LastAttachCyc.Load())
		}
		if got := col.Registry.Counter("core", "attaches_total").Load(); got != 1 {
			t.Fatalf("ncpu=%d: attaches counter = %d", ncpu, got)
		}
	}
}

// TestSwitchSpansDisabledPath: with no collector installed, switching
// must record nothing and allocate no tracer state.
func TestSwitchSpansDisabledPath(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if mc.M.Telemetry() != nil {
		t.Fatal("collector appeared out of nowhere")
	}
	// Stats still work without telemetry (the pre-existing path).
	if mc.Stats.Attaches.Load() != 1 || mc.Stats.Detaches.Load() != 1 {
		t.Fatal("switch stats missing without collector")
	}
}

// TestDeferredSwitchInstant: a switch deferred by the commit gate
// leaves an instant marker, and only the eventual committed switch
// opens a root span.
func TestDeferredSwitchInstant(t *testing.T) {
	mc, col := newMercuryObs(t, 1)
	c := mc.M.BootCPU()
	// Deliver the switch ISR in the middle of a VO operation (nonzero
	// refcount), the same probe idiom as TestSwitchDefersDuringVOOp.
	mc.K.IDT.Set(hw.VecDebug, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(cc *hw.CPU, f *hw.TrapFrame) {
			if mc.K.VO().Refs() != 0 {
				mc.modeSwitchISR(cc, f)
			}
		}})
	mc.pending.Store(int32(ModePartialVirtual))
	c.LAPIC.Post(hw.VecDebug)
	table := mc.K.Frames.Alloc()
	mc.K.VO().WritePTE(c, table, 0, hw.MakePTE(5, hw.PTEPresent))
	if mc.Stats.Deferred.Load() == 0 {
		t.Fatal("switch was not deferred")
	}
	c.IdleUntil(func() bool { return mc.Mode() == ModePartialVirtual })

	var deferred, roots int
	for _, s := range col.Tracer.Spans() {
		switch s.Name {
		case "switch/deferred":
			deferred++
			if s.Kind() != obs.SpanInstant {
				t.Fatal("deferred marker is not an instant")
			}
		case "switch/attach":
			roots++
		}
	}
	if deferred == 0 {
		t.Fatal("no deferred instant recorded")
	}
	if roots != 1 {
		t.Fatalf("%d attach roots, want 1 (the committed retry)", roots)
	}
}

// BenchmarkSwitchRoundTrip measures an attach/detach pair; the NoTel
// variant is the disabled path every deployment without a collector
// runs, the Tel variant carries the full span + metric instrumentation.
func BenchmarkSwitchRoundTrip(b *testing.B) {
	run := func(b *testing.B, tel bool) {
		m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
		if tel {
			m.SetTelemetry(obs.New(1))
		}
		mc, err := New(Config{Machine: m, Policy: TrackRecompute})
		if err != nil {
			b.Fatal(err)
		}
		c := mc.M.BootCPU()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
				b.Fatal(err)
			}
			if err := mc.SwitchSync(c, ModeNative); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NoTelemetry", func(b *testing.B) { run(b, false) })
	b.Run("Telemetry", func(b *testing.B) { run(b, true) })
}
