package core

import "testing"

// Two sensors watching the same state both trip on one corruption; the
// first repair fixes the queue and the second finds nothing left to do.
// A repair that leaves a healthy queue healthy has succeeded — it must
// not report "nothing to repair" as a failure.
func TestRunqueueRepairIdempotentAcrossSensors(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	mc.K.InjectRunqueueCorruption()

	sensors := []Sensor{RunqueueSensor(), RunqueueSensor()}
	rep, err := mc.SelfHeal(c, sensors, RunqueueRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Healed {
		t.Fatalf("healing episode not fully healed: %+v", rep)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("expected both sensors to trip, got %d outcomes", len(rep.Outcomes))
	}
	for _, out := range rep.Outcomes {
		if !out.Healed {
			t.Fatalf("sensor %s failed to heal: %s", out.Sensor, out.Err)
		}
	}
	if mc.Mode() != ModeNative {
		t.Fatal("system not back in native mode")
	}
	if err := mc.K.CheckRunqueue(); err != nil {
		t.Fatalf("runqueue still corrupt: %v", err)
	}
}

// The repair is directly idempotent too: running it on an already-clean
// queue is a no-op success, while a queue that cannot be repaired still
// reports failure.
func TestRunqueueRepairOnHealthyQueueSucceeds(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	repair := RunqueueRepair()

	mc.K.InjectRunqueueCorruption()
	if err := repair(c, mc); err != nil {
		t.Fatalf("first repair: %v", err)
	}
	if err := repair(c, mc); err != nil {
		t.Fatalf("second repair on healthy queue: %v", err)
	}
	if err := mc.K.CheckRunqueue(); err != nil {
		t.Fatalf("runqueue: %v", err)
	}
}
