package core

import (
	"fmt"

	"repro/internal/hw"
)

// The mode-switch protocol as data (§5.1.1, §5.4). The interrupt
// handler in switch.go and the reduced machine in internal/mc execute
// the same atomic steps against the same decision functions; the only
// difference is the scheduler. Production runs each step immediately in
// ISR order on simulated CPUs; the model checker enumerates every
// interleaving of the same steps across CPUs and in-flight
// virtualization-object operations. Keeping the step vocabulary and the
// gate/retry decisions here — in one place both sides import — is what
// makes a model-checker verdict a statement about the shipped protocol
// rather than about a hand-transcribed copy of it.

// SwitchStep identifies one atomic step of the mode-switch protocol as
// executed by the control processor (and, for the AP steps, by each
// application processor). The production ISR emits these through the
// installed StepObserver in execution order; the model checker's
// control-processor actor takes exactly these steps, one transition
// each.
type SwitchStep uint8

const (
	// StepGateCheck reads the VO refcount against the §5.1.1 commit
	// gate before any cross-CPU coordination.
	StepGateCheck SwitchStep = iota
	// StepRendezvousGather sends the rendezvous IPIs and waits until
	// every application processor has parked (§5.4).
	StepRendezvousGather
	// StepGateRecheck re-reads the commit gate after the APs parked: an
	// operation that entered the VO between StepGateCheck and the park
	// is frozen mid-flight still holding the refcount, and committing
	// under it would tear the mode (the PR-3 TOCTOU race).
	StepGateRecheck
	// StepCommit applies the state-transfer functions (attach or
	// detach) and publishes the new mode.
	StepCommit
	// StepRendezvousRelease unparks the APs; each reloads its per-CPU
	// control state for the (possibly unchanged) target mode.
	StepRendezvousRelease
	// StepDeferArm postpones the switch: the retry timer is armed with
	// the backoff delay for the current deferral count.
	StepDeferArm
	// StepRetryFire is the retry timer expiring and re-raising the
	// mode-switch interrupt.
	StepRetryFire
	// StepStarve abandons the pending switch after MaxDeferrals
	// retries.
	StepStarve
	// StepAPPark is an application processor checking in at the
	// rendezvous (spinning with interrupts off).
	StepAPPark
	// StepAPResume is an application processor leaving the rendezvous
	// after release, having reloaded its local state for the target.
	StepAPResume
)

func (s SwitchStep) String() string {
	switch s {
	case StepGateCheck:
		return "gate-check"
	case StepRendezvousGather:
		return "rendezvous-gather"
	case StepGateRecheck:
		return "gate-recheck"
	case StepCommit:
		return "commit"
	case StepRendezvousRelease:
		return "rendezvous-release"
	case StepDeferArm:
		return "defer-arm"
	case StepRetryFire:
		return "retry-fire"
	case StepStarve:
		return "starve"
	case StepAPPark:
		return "ap-park"
	case StepAPResume:
		return "ap-resume"
	}
	return fmt.Sprintf("step%d", uint8(s))
}

// StepObserver receives the protocol's atomic steps as the engine
// executes them, in per-CPU program order. Installed by tests and the
// model-checker conformance harness; the production default (nil) costs
// one predictable branch per step. Observers run inside the switch ISR
// with interrupts off and must not call back into the engine.
type StepObserver interface {
	OnStep(cpu int, step SwitchStep, target Mode)
}

// SetStepObserver installs o (nil to remove). Not safe to call while a
// switch is in flight.
func (mc *Mercury) SetStepObserver(o StepObserver) { mc.stepObs = o }

// step emits one protocol step to the installed observer.
func (mc *Mercury) step(c *hw.CPU, s SwitchStep, target Mode) {
	if mc.stepObs != nil {
		mc.stepObs.OnStep(c.ID, s, target)
	}
}

// CommitGateOpen is the §5.1.1 commit-gate decision: a mode switch may
// commit only when no sensitive operation is in flight. Both the
// first check and the post-rendezvous recheck use it, as does the
// model checker's reduced machine.
func CommitGateOpen(refs int64) bool { return refs == 0 }

// DeferVerdict decides the retry path for a deferred switch: n is the
// deferral count after the current deferral, max the configured budget.
// True means the request is abandoned as starved instead of re-armed.
func DeferVerdict(n, max int32) (starved bool) { return n >= max }

// BackoffCapMultiple bounds the exponential retry backoff: the delay
// never exceeds BackoffCapMultiple times the base retry interval, so a
// sensitive section that drains late still sees a retry within ~one
// scheduling quantum of the paper's original fixed 10 ms.
const BackoffCapMultiple = 8

// backoffJitterDiv sets the deterministic jitter band: the delay is
// perturbed by up to ±1/backoffJitterDiv of itself (±12.5%), which
// de-synchronizes retry storms across a fleet without giving up
// replayability — the jitter stream is seeded per system.
const backoffJitterDiv = 8

// BackoffDelay computes the n-th retry delay (n counts deferrals of the
// current request, starting at 1): exponential in n, capped at
// BackoffCapMultiple×base, with deterministic jitter drawn from state.
// The same seed yields the same delay sequence — chaos campaigns and
// the divergence audit stay bit-replayable.
func BackoffDelay(base hw.Cycles, n int32, state *uint64) hw.Cycles {
	if base == 0 {
		return 0
	}
	capped := base * BackoffCapMultiple
	d := base
	for i := int32(1); i < n && d < capped; i++ {
		d <<= 1
	}
	if d > capped {
		d = capped
	}
	jitterSpan := d / backoffJitterDiv
	if jitterSpan == 0 {
		return d
	}
	r := splitmix64(state)
	// Centered jitter in [-jitterSpan, +jitterSpan].
	j := int64(r%(2*jitterSpan+1)) - int64(jitterSpan)
	return hw.Cycles(int64(d) + j)
}

// splitmix64 advances state and returns the next value of the SplitMix64
// sequence — a tiny, well-distributed generator whose whole state is one
// word, so the backoff stream costs no allocation and survives in an
// atomic field.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
