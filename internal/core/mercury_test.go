package core

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/xen"
)

// newMercury builds a Mercury system on a fresh machine.
func newMercury(t *testing.T, ncpu int, policy TrackingPolicy) *Mercury {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: ncpu})
	mc, err := New(Config{Machine: m, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestBootsNativeWithPrecachedVMM(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	if mc.Mode() != ModeNative {
		t.Fatalf("boot mode = %v", mc.Mode())
	}
	if mc.VMM.Active {
		t.Fatal("pre-cached VMM is active at boot")
	}
	// The VMM's footprint is resident (warmed) even though inactive.
	if mc.VMM.Reserved == nil {
		t.Fatal("no reserved VMM memory")
	}
	c := mc.M.BootCPU()
	if c.IDTR != mc.K.IDT {
		t.Fatal("hardware IDT not the kernel's in native mode")
	}
	if mc.K.GDT.Entries[hw.GDTKernelCode].DPL != hw.PL0 {
		t.Fatal("kernel not at PL0 in native mode")
	}
}

func TestRoundTripSwitch(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	if mc.Mode() != ModePartialVirtual {
		t.Fatalf("mode = %v", mc.Mode())
	}
	if !mc.VMM.Active {
		t.Fatal("VMM inactive after attach")
	}
	if c.IDTR != mc.VMM.IDT {
		t.Fatal("hardware IDT not the VMM's after attach")
	}
	if !mc.K.VO().Virtualized() {
		t.Fatal("kernel still using the native object")
	}

	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if mc.Mode() != ModeNative || mc.VMM.Active {
		t.Fatal("detach incomplete")
	}
	if c.IDTR != mc.K.IDT {
		t.Fatal("hardware IDT not returned to the kernel")
	}
	if mc.K.VO().Virtualized() {
		t.Fatal("kernel still using the virtual object")
	}
	if mc.Stats.Attaches.Load() != 1 || mc.Stats.Detaches.Load() != 1 {
		t.Fatalf("stats: %d attaches, %d detaches",
			mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load())
	}
}

// TestSwitchPreservesProcessState is the paper's core promise: a mode
// switch does not disturb running applications.
func TestSwitchPreservesProcessState(t *testing.T) {
	for _, policy := range []TrackingPolicy{TrackRecompute, TrackActive} {
		mc := newMercury(t, 1, policy)
		k := mc.K
		boot := mc.M.BootCPU()

		checks := 0
		k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
			// Build state in user memory.
			base := p.Mmap(24, guest.ProtRead|guest.ProtWrite, true)
			c := p.CPU()
			for i := 0; i < 24; i++ {
				c.WriteWord(base+hw.VirtAddr(i<<hw.PageShift), uint32(1000+i))
			}

			if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
				panic(err)
			}
			// Memory intact, and new mappings work through the VMM.
			c = p.CPU()
			for i := 0; i < 24; i++ {
				if got := c.ReadWord(base + hw.VirtAddr(i<<hw.PageShift)); got != uint32(1000+i) {
					panic("memory corrupted by attach")
				}
			}
			b2 := p.Mmap(4, guest.ProtRead|guest.ProtWrite, true)
			p.Touch(b2, 4, true)

			if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
				panic(err)
			}
			c = p.CPU()
			for i := 0; i < 24; i++ {
				if got := c.ReadWord(base + hw.VirtAddr(i<<hw.PageShift)); got != uint32(1000+i) {
					panic("memory corrupted by detach")
				}
			}
			p.Munmap(b2)
			p.Munmap(base)
			checks++
		})
		k.Run(boot)
		if checks != 1 {
			t.Fatalf("policy %v: app did not complete", policy)
		}
	}
}

// TestSwitchFixesSleepingSelectors: a process asleep across the switch
// resumes without a #GP because the stub patched its cached selectors.
func TestSwitchFixesSleepingSelectors(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	resumed := false
	k.Spawn(boot, "main", guest.DefaultImage("main"), func(p *guest.Proc) {
		pipe := k.NewPipe()
		p.Fork("sleeper", func(sp *guest.Proc) {
			sp.PipeRead(pipe, 1) // parks with PL0 selectors cached
			resumed = true       // would #GP without the fixup
			sp.Exit(0)
		})
		p.Yield() // let the sleeper park
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if mc.Stats.FixedFrames.Load() == 0 {
			panic("selector fixup did not run")
		}
		p.PipeWrite(pipe, 1) // wake the sleeper in virtual mode
		p.Wait()
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	k.Run(boot)
	if !resumed {
		t.Fatal("sleeper did not resume after the switch")
	}
}

// TestRefcountGateDefers: a switch requested while sensitive code is in
// flight is postponed and retried (§5.1.1).
func TestRefcountGateDefers(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	// Hold the virtualization object open by entering it manually: we
	// simulate an in-flight operation by invoking the ISR directly.
	mc.pending.Store(int32(ModePartialVirtual))
	// Fake a nonzero refcount via a real in-flight op: trigger the ISR
	// from inside a VO call using a posted interrupt.
	mc.pending.Store(-1)

	fired := false
	probe := hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(cc *hw.CPU, f *hw.TrapFrame) {
			if mc.K.VO().Refs() != 0 {
				fired = true
				mc.modeSwitchISR(cc, f)
			}
		}}
	mc.K.IDT.Set(hw.VecDebug, probe)
	mc.pending.Store(int32(ModePartialVirtual))
	c.LAPIC.Post(hw.VecDebug)
	// This VO op's internal charge delivers the probe mid-operation.
	table := mc.K.Frames.Alloc()
	mc.K.VO().WritePTE(c, table, 0, hw.MakePTE(5, hw.PTEPresent))
	if !fired {
		t.Fatal("probe did not observe an in-flight operation")
	}
	if mc.Stats.Deferred.Load() == 0 {
		t.Fatal("switch was not deferred")
	}
	if mc.Mode() != ModeNative {
		t.Fatal("switch committed despite nonzero refcount")
	}
	// The retry timer is armed; idle until the deferred switch lands
	// (the idle loop takes the tick that re-raises the interrupt).
	c.IdleUntil(func() bool { return mc.Mode() == ModePartialVirtual })
	if mc.Mode() != ModePartialVirtual {
		t.Fatal("deferred switch never committed")
	}
}

// TestDetachRefusedWithHostedDomains: the driver domain cannot leave
// while it still hosts guests (§6.3).
func TestDetachRefusedWithHostedDomains(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "hosted", 256)
	if err != nil {
		t.Fatal(err)
	}
	// The failure-resistant switch reports the refusal instead of
	// bringing the system down; the VMM stays attached.
	if err := mc.SwitchSync(c, ModeNative); err == nil {
		t.Fatal("detach with hosted domain did not fail")
	}
	if mc.Mode() != ModePartialVirtual || !mc.VMM.Active {
		t.Fatal("failed detach changed the mode")
	}
	// After the guest is gone, detach succeeds.
	if err := mc.VMM.HypDomctlDestroy(c, mc.Dom, domU.ID); err != nil {
		t.Fatal(err)
	}
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
}

// TestFrameAccountingCleanAfterDetach: the recompute/release cycle is
// an identity on the frame table.
func TestFrameAccountingCleanAfterDetach(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()
	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(16, guest.ProtRead|guest.ProtWrite, true)
		_ = base
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.VMM.FT.CheckInvariants(); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
	})
	k.Run(boot)
	// After detach every frame's accounting is zero again.
	for pfn := hw.PFN(0); pfn < mc.M.Mem.NumFrames(); pfn++ {
		fi := mc.VMM.FT.Get(pfn)
		if fi.TypeCount != 0 || fi.TotalRefs != 0 || fi.Pinned {
			t.Fatalf("frame %d retains accounting after detach: %+v", pfn, fi)
		}
	}
}

func TestSMPRendezvousSwitch(t *testing.T) {
	mc := newMercury(t, 2, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()

	done := false
	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
		done = true
	})
	doneCh := make(chan struct{})
	go func() {
		k.Run(mc.M.CPUs[1])
		close(doneCh)
	}()
	k.Run(boot)
	<-doneCh
	if !done {
		t.Fatal("SMP switch round trip failed")
	}
	// Both CPUs ended with the kernel's tables.
	for _, c := range mc.M.CPUs {
		if c.IDTR != k.IDT {
			t.Fatalf("cpu%d IDT not restored", c.ID)
		}
	}
}

func TestHostUnmodifiedGuest(t *testing.T) {
	// The M-U capability: after self-virtualizing, Mercury hosts an
	// unmodified Xen-Linux guest.
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "domU", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.HostedDomains()) != 1 {
		t.Fatalf("hosted domains = %d", len(mc.HostedDomains()))
	}
	if domU.Privileged {
		t.Fatal("hosted guest is privileged")
	}
	lo, hi := domU.Frames.Range()
	if hi-lo != 1024 {
		t.Fatalf("donated partition = %d frames", hi-lo)
	}
	// The donated frames belong to the new domain now.
	if fi := mc.VMM.FT.Get(lo); fi.Owner != domU.ID {
		t.Fatalf("frame owner = dom%d", fi.Owner)
	}
}

func TestModeStringAndPolicy(t *testing.T) {
	if ModeNative.String() != "native" ||
		ModePartialVirtual.String() != "partial-virtual" ||
		ModeFullVirtual.String() != "full-virtual" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func TestSwitchToSameModeIsNoop(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if mc.Stats.Attaches.Load() != 0 && mc.Stats.Detaches.Load() != 0 {
		t.Fatal("no-op switch did work")
	}
}

func TestFullVirtualMode(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModeFullVirtual); err != nil {
		t.Fatal(err)
	}
	if mc.Dom.Privileged {
		t.Fatal("full-virtual domain still privileged")
	}
	if mc.Dom.State != xen.DomRunning {
		t.Fatal("domain not running")
	}
}

// TestPrintkRelocatesAcrossModes: the console path is a sensitive I/O
// operation — serial port in native mode, VMM console in virtual mode —
// and follows the mode switch automatically.
func TestPrintkRelocatesAcrossModes(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	k := mc.K
	boot := mc.M.BootCPU()
	k.Spawn(boot, "logger", guest.DefaultImage("logger"), func(p *guest.Proc) {
		p.Printk("native boot message")
		if err := mc.SwitchSync(p.CPU(), ModePartialVirtual); err != nil {
			panic(err)
		}
		p.Printk("running on the VMM")
		if err := mc.SwitchSync(p.CPU(), ModeNative); err != nil {
			panic(err)
		}
		p.Printk("back on bare hardware")
	})
	k.Run(boot)

	serial := mc.M.Serial.Lines()
	if len(serial) != 2 || serial[0] != "native boot message" || serial[1] != "back on bare hardware" {
		t.Fatalf("serial = %q", serial)
	}
	vmmLog := mc.VMM.ConsoleLog()
	if len(vmmLog) != 1 || !strings.Contains(vmmLog[0], "running on the VMM") {
		t.Fatalf("vmm console = %q", vmmLog)
	}
}
