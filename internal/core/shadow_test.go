package core

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
)

// TestShadowModeRoundTrip runs a full attach/detach with shadow paging:
// the application's memory survives, hardware runs on shadows while
// attached, and every shadow frame is released at detach.
func TestShadowModeRoundTrip(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
	mc, err := New(Config{Machine: m, ShadowPaging: true})
	if err != nil {
		t.Fatal(err)
	}
	k := mc.K
	boot := m.BootCPU()

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		base := p.Mmap(16, guest.ProtRead|guest.ProtWrite, true)
		c := p.CPU()
		for i := 0; i < 16; i++ {
			c.WriteWord(base+hw.VirtAddr(i<<hw.PageShift), uint32(5000+i))
		}
		guestRoot := c.ReadCR3()

		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			panic(err)
		}
		c = p.CPU()
		// Hardware no longer runs on the guest's own tables.
		if c.ReadCR3() == guestRoot {
			panic("shadow mode left hardware on the guest root")
		}
		if mc.VMM.ShadowFramesInUse() == 0 {
			panic("no shadows allocated")
		}
		// Memory reads resolve identically through the shadow.
		for i := 0; i < 16; i++ {
			if got := c.ReadWord(base + hw.VirtAddr(i<<hw.PageShift)); got != uint32(5000+i) {
				panic("shadow walk returned wrong data")
			}
		}
		// New mappings propagate into the shadow via write-through.
		b2 := p.Mmap(4, guest.ProtRead|guest.ProtWrite, false)
		p.Touch(b2, 4, true)
		if err := mc.VMM.VerifyShadow(mc.Dom, guestRoot); err != nil {
			panic(err)
		}

		if err := mc.SwitchSync(c, ModeNative); err != nil {
			panic(err)
		}
		c = p.CPU()
		if c.ReadCR3() != guestRoot {
			panic("detach did not restore the guest root")
		}
		for i := 0; i < 16; i++ {
			if got := c.ReadWord(base + hw.VirtAddr(i<<hw.PageShift)); got != uint32(5000+i) {
				panic("memory corrupted across shadow round trip")
			}
		}
		p.Munmap(b2)
		p.Munmap(base)
	})
	k.Run(boot)

	if got := mc.VMM.ShadowFramesInUse(); got != 0 {
		t.Fatalf("shadow frames leaked: %d", got)
	}
}

// TestShadowModeRejectsSMP documents the implementation restriction.
func TestShadowModeRejectsSMP(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 2})
	if _, err := New(Config{Machine: m, ShadowPaging: true}); err == nil {
		t.Fatal("SMP shadow paging accepted")
	}
}
