// Package core implements Mercury itself: the self-virtualization engine
// that dynamically attaches a pre-cached, full-fledged VMM underneath a
// running operating system and detaches it again, in sub-millisecond
// time, without disturbing running applications (§4, §5).
//
// The engine combines:
//   - a VMM pre-cached at machine boot (§4.1): xen.Boot builds and warms
//     every hypervisor structure; only per-switch state is touched later;
//   - virtualization objects (§4.2): the kernel's sensitive operations go
//     through vo.Object; a mode switch swaps the object pointer;
//   - behavior-consistency machinery (§5.1): reference-counted switch
//     commit with a 10 ms retry timer, state-transfer functions
//     (page-table pinning/release, kernel segment privilege flips,
//     interrupt rebinding, cached-selector fixup on sleeping threads'
//     kernel stacks) and state reloading inside an uninterruptible
//     interrupt handler;
//   - SMP coordination via IPIs and shared counters (§5.4).
package core
