package core

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
)

// Self-healing (§6.2): sensors watch for anomalies in the running OS;
// when one fires, the system self-virtualizes, the (now fully
// privileged) VMM repairs the tainted state from outside the kernel,
// and the VMM detaches again — no second machine, no steady-state
// overhead.

// Sensor inspects the kernel and reports an anomaly, or nil. Repair,
// when set, is the sensor's own fix; a tripped sensor without one falls
// back to the repair passed to SelfHeal.
type Sensor struct {
	Name   string
	Check  func(k *guest.Kernel) error
	Repair Repair
}

// Repair fixes the anomaly a sensor reported, running with the VMM
// attached (full control over the OS).
type Repair func(c *hw.CPU, mc *Mercury) error

// SensorOutcome is one sensor's result within a healing episode.
type SensorOutcome struct {
	Sensor  string
	Anomaly string
	Healed  bool
	Err     string // repair error or persistence message, "" when healed
}

// HealReport describes one healing episode. Sensor/Anomaly name the
// first tripped sensor and Healed is the conjunction over all tripped
// sensors; Outcomes carries the per-sensor detail.
type HealReport struct {
	Sensor        string
	Anomaly       string
	Healed        bool
	AttachedForUS float64
	Outcomes      []SensorOutcome
}

// SelfHeal evaluates every sensor; if any report anomalies it attaches
// the VMM once, repairs each tripped sensor inside that single attach
// window, verifies each is quiet again, and detaches. Returns nil, nil
// when no sensor fired, and the first repair failure otherwise.
func (mc *Mercury) SelfHeal(c *hw.CPU, sensors []Sensor, fallback Repair) (*HealReport, error) {
	var tripped []int
	var anomalies []error
	for i := range sensors {
		if err := sensors[i].Check(mc.K); err != nil {
			tripped = append(tripped, i)
			anomalies = append(anomalies, err)
		}
	}
	if len(tripped) == 0 {
		return nil, nil
	}
	rep := &HealReport{
		Sensor:  sensors[tripped[0]].Name,
		Anomaly: anomalies[0].Error(),
		Healed:  true,
	}
	sp := obs.Begin(mc.telCol(), c.ID, c.Now(), "core/self-heal")
	defer func() {
		healed := uint64(0)
		if rep.Healed {
			healed = 1
		}
		sp.EndArg(c.Now(), healed)
	}()
	if h := mc.tel(); h != nil {
		h.healings.Inc()
	}

	wasNative := mc.Mode() == ModeNative
	if wasNative {
		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			rep.Healed = false
			return rep, fmt.Errorf("core: attaching for healing: %w", err)
		}
	}
	attachedAt := c.Now()
	var firstErr error
	for n, i := range tripped {
		s := &sensors[i]
		out := SensorOutcome{Sensor: s.Name, Anomaly: anomalies[n].Error()}
		repair := s.Repair
		if repair == nil {
			repair = fallback
		}
		err := repair(c, mc)
		if err == nil {
			if perr := s.Check(mc.K); perr != nil {
				err = fmt.Errorf("anomaly persists after repair: %w", perr)
			}
		}
		if err != nil {
			out.Err = err.Error()
			rep.Healed = false
			if firstErr == nil {
				firstErr = err
			}
		} else {
			out.Healed = true
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	rep.AttachedForUS = float64(c.Now()-attachedAt) / float64(mc.M.Hz) * 1e6
	if wasNative {
		if err := mc.SwitchSync(c, ModeNative); err != nil {
			return rep, fmt.Errorf("core: detaching after healing: %w", err)
		}
	}
	return rep, firstErr
}

// RunqueueSensor detects corrupted scheduler state (dead processes on
// the run queue) — the class of "tainted kernel state" a healing VMM
// repairs from outside.
func RunqueueSensor() Sensor {
	return Sensor{
		Name:  "runqueue-integrity",
		Check: func(k *guest.Kernel) error { return k.CheckRunqueue() },
	}
}

// RunqueueRepair drops invalid entries from the scheduler's run queue.
// Removing nothing is only a failure if the queue is still corrupt —
// an earlier sensor's repair may already have fixed it, and a repair
// that leaves a healthy queue healthy has succeeded.
func RunqueueRepair() Repair {
	return func(c *hw.CPU, mc *Mercury) error {
		if n := mc.K.RepairRunqueue(c); n > 0 {
			return nil
		}
		if err := mc.K.CheckRunqueue(); err != nil {
			return fmt.Errorf("core: nothing to repair but queue still corrupt: %w", err)
		}
		return nil
	}
}
