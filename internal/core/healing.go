package core

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
)

// Self-healing (§6.2): sensors watch for anomalies in the running OS;
// when one fires, the system self-virtualizes, the (now fully
// privileged) VMM repairs the tainted state from outside the kernel,
// and the VMM detaches again — no second machine, no steady-state
// overhead.

// Sensor inspects the kernel and reports an anomaly, or nil.
type Sensor struct {
	Name  string
	Check func(k *guest.Kernel) error
}

// Repair fixes the anomaly a sensor reported, running with the VMM
// attached (full control over the OS).
type Repair func(c *hw.CPU, mc *Mercury) error

// HealReport describes one healing episode.
type HealReport struct {
	Sensor        string
	Anomaly       string
	Healed        bool
	AttachedForUS float64
}

// SelfHeal runs every sensor; on the first anomaly it attaches the VMM,
// runs the repair, verifies the sensor is quiet, and detaches. Returns
// nil, nil when no sensor fired.
func (mc *Mercury) SelfHeal(c *hw.CPU, sensors []Sensor, repair Repair) (*HealReport, error) {
	var tripped *Sensor
	var anomaly error
	for i := range sensors {
		if err := sensors[i].Check(mc.K); err != nil {
			tripped = &sensors[i]
			anomaly = err
			break
		}
	}
	if tripped == nil {
		return nil, nil
	}
	rep := &HealReport{Sensor: tripped.Name, Anomaly: anomaly.Error()}
	sp := obs.Begin(mc.telCol(), c.ID, c.Now(), "core/self-heal")
	defer func() {
		healed := uint64(0)
		if rep.Healed {
			healed = 1
		}
		sp.EndArg(c.Now(), healed)
	}()
	if h := mc.tel(); h != nil {
		h.healings.Inc()
	}

	wasNative := mc.Mode() == ModeNative
	if wasNative {
		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			return rep, fmt.Errorf("core: attaching for healing: %w", err)
		}
	}
	attachedAt := c.Now()
	repairErr := repair(c, mc)
	if repairErr == nil {
		if err := tripped.Check(mc.K); err != nil {
			repairErr = fmt.Errorf("anomaly persists after repair: %w", err)
		} else {
			rep.Healed = true
		}
	}
	rep.AttachedForUS = float64(c.Now()-attachedAt) / float64(mc.M.Hz) * 1e6
	if wasNative {
		if err := mc.SwitchSync(c, ModeNative); err != nil {
			return rep, fmt.Errorf("core: detaching after healing: %w", err)
		}
	}
	return rep, repairErr
}

// RunqueueSensor detects corrupted scheduler state (dead processes on
// the run queue) — the class of "tainted kernel state" a healing VMM
// repairs from outside.
func RunqueueSensor() Sensor {
	return Sensor{
		Name:  "runqueue-integrity",
		Check: func(k *guest.Kernel) error { return k.CheckRunqueue() },
	}
}

// RunqueueRepair drops invalid entries from the scheduler's run queue.
func RunqueueRepair() Repair {
	return func(c *hw.CPU, mc *Mercury) error {
		n := mc.K.RepairRunqueue(c)
		if n == 0 {
			return fmt.Errorf("core: nothing to repair")
		}
		return nil
	}
}
