package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// newMercuryDeferrals builds a Mercury system with a small deferral
// budget so starvation tests stay fast.
func newMercuryDeferrals(t *testing.T, maxDeferrals int) *Mercury {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
	mc, err := New(Config{Machine: m, Policy: TrackRecompute, MaxDeferrals: maxDeferrals})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

// voHolder is the fault-injection hold on the VO refcount.
type voHolderIface interface {
	Hold()
	Unhold()
}

// TestChaosSwitchStarvationBudget: a sensitive section that never
// drains must not make the switch retry forever — after MaxDeferrals
// the request clears and LastSwitchError reports starvation, and once
// the section drains a fresh request commits.
func TestChaosSwitchStarvationBudget(t *testing.T) {
	mc := newMercuryDeferrals(t, 2)
	c := mc.M.BootCPU()
	h, ok := mc.K.VO().(voHolderIface)
	if !ok {
		t.Fatalf("VO %q has no refcount hold", mc.K.VO().Name())
	}

	h.Hold()
	err := mc.SwitchSync(c, ModePartialVirtual)
	if err == nil {
		t.Fatal("switch committed with a held VO refcount")
	}
	if !strings.Contains(err.Error(), "starved by sensitive code") {
		t.Fatalf("starvation not reported: %v", err)
	}
	if mc.Mode() != ModeNative {
		t.Fatalf("mode = %v after starved switch", mc.Mode())
	}
	if got := mc.Stats.StarvedSwitches.Load(); got != 1 {
		t.Fatalf("StarvedSwitches = %d", got)
	}
	if got := mc.Stats.Deferred.Load(); got != 2 {
		t.Fatalf("Deferred = %d (budget was 2)", got)
	}
	if e := mc.LastSwitchError(); e == nil || !strings.Contains(e.Error(), "starved") {
		t.Fatalf("LastSwitchError = %v", e)
	}

	// The request cleared: once the section drains, a new one commits.
	h.Unhold()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatalf("switch after drain: %v", err)
	}
	if mc.Mode() != ModePartialVirtual {
		t.Fatalf("mode = %v", mc.Mode())
	}
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSelfHealMultiSensorSingleWindow: two tripped sensors are
// both repaired inside one attach window, with per-sensor outcomes.
func TestChaosSelfHealMultiSensorSingleWindow(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	mc.K.InjectRunqueueCorruption()
	mc.M.Sensors.Set(hw.SensorCPUTempC, 96)
	bank := mc.M.Sensors

	rep, err := mc.SelfHeal(c, []Sensor{
		RunqueueSensor(), // repairs via the fallback
		{
			Name:   "failure-predictor",
			Check:  func(*guest.Kernel) error { return DefaultPredictor().Predict(bank) },
			Repair: func(*hw.CPU, *Mercury) error { bank.Set(hw.SensorCPUTempC, 52); return nil },
		},
	}, RunqueueRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Healed {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("outcomes: %+v", rep.Outcomes)
	}
	for _, out := range rep.Outcomes {
		if !out.Healed || out.Err != "" {
			t.Fatalf("sensor %s not healed: %+v", out.Sensor, out)
		}
	}
	// One attach window for both repairs.
	if mc.Stats.Attaches.Load() != 1 || mc.Stats.Detaches.Load() != 1 {
		t.Fatalf("attaches=%d detaches=%d", mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load())
	}
	if mc.Mode() != ModeNative {
		t.Fatal("not back to native after healing")
	}
}

// TestChaosHealingFailureRestoresMode: a repair that fails leaves
// Healed=false, surfaces the error, and still restores native mode.
func TestChaosHealingFailureRestoresMode(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	mc.K.InjectRunqueueCorruption()

	rep, err := mc.SelfHeal(c, []Sensor{RunqueueSensor()},
		func(*hw.CPU, *Mercury) error { return fmt.Errorf("repair tool broken") })
	if err == nil || !strings.Contains(err.Error(), "repair tool broken") {
		t.Fatalf("repair failure not surfaced: %v", err)
	}
	if rep == nil || rep.Healed {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Outcomes) != 1 || rep.Outcomes[0].Healed || rep.Outcomes[0].Err == "" {
		t.Fatalf("outcomes: %+v", rep.Outcomes)
	}
	if mc.Mode() != ModeNative {
		t.Fatalf("mode = %v after failed healing", mc.Mode())
	}
	mc.K.RepairRunqueue(c)
	if err := mc.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

// TestChaosHealingEscalatesToEvacuation: when the repair fails and a
// standby node exists, the healing path escalates into §6.5 evacuation
// and releases the node.
func TestChaosHealingEscalatesToEvacuation(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	dstV, dstDom0, _ := spareNode(t)
	hw.Wire(mc.M.NIC, dstV.M.NIC, hw.Gigabit())
	mc.K.InjectRunqueueCorruption()

	rep, err := mc.HealOrEvacuate(c, []Sensor{RunqueueSensor()},
		func(*hw.CPU, *Mercury) error { return fmt.Errorf("repair tool broken") },
		dstV, dstDom0, migrate.DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Escalated {
		t.Fatalf("no escalation: %+v", rep)
	}
	if rep.Heal == nil || rep.Heal.Healed {
		t.Fatalf("heal report: %+v", rep.Heal)
	}
	if rep.Evacuation == nil || !rep.Evacuation.NodeReleased {
		t.Fatalf("evacuation report: %+v", rep.Evacuation)
	}
	if mc.Mode() != ModeNative {
		t.Fatalf("mode = %v after evacuation", mc.Mode())
	}
}

// TestChaosEvacuationFailureMidCampaign: when the standby cannot take
// the hosted domain, migrate.Live fails, the error is surfaced, and the
// node stays attached — it cannot abandon a live guest.
func TestChaosEvacuationFailureMidCampaign(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	// A standby too small to receive anything: nearly all of its free
	// memory goes to its dom0.
	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	dstV, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	dstV.Activate(c2)
	dstDom0, err := dstV.CreateDomain("dom0", 3500, true)
	if err != nil {
		t.Fatal(err)
	}
	dstV.SetCurrent(c2, dstDom0)
	hw.Wire(mc.M.NIC, m2.NIC, hw.Gigabit())

	// Host a domain bigger than the standby's leftover memory.
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "job", 4096); err != nil {
		t.Fatal(err)
	}

	mc.K.InjectRunqueueCorruption()
	rep, err := mc.HealOrEvacuate(c, []Sensor{RunqueueSensor()},
		func(*hw.CPU, *Mercury) error { return fmt.Errorf("repair tool broken") },
		dstV, dstDom0, migrate.DefaultLiveConfig())
	if err == nil || !strings.Contains(err.Error(), "evacuating") {
		t.Fatalf("evacuation failure not surfaced: %v", err)
	}
	if rep == nil || !rep.Escalated {
		t.Fatalf("no escalation: %+v", rep)
	}
	if rep.Evacuation == nil || rep.Evacuation.NodeReleased {
		t.Fatalf("evacuation report: %+v", rep.Evacuation)
	}
	// The node must not abandon its live guest: still attached.
	if mc.Mode() != ModePartialVirtual {
		t.Fatalf("mode = %v with a live hosted domain", mc.Mode())
	}
}

// TestChaosInvariantsCleanSystem: the system-wide checker passes in
// both modes on an untouched system.
func TestChaosInvariantsCleanSystem(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.CheckInvariants(c); err != nil {
		t.Fatalf("native invariants: %v", err)
	}
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	if err := mc.CheckInvariants(c); err != nil {
		t.Fatalf("virtual invariants: %v", err)
	}
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if err := mc.CheckInvariants(c); err != nil {
		t.Fatalf("post-cycle invariants: %v", err)
	}
}
