package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hw"
)

// TestDetachRunsQuiescers: a registered datapath quiescer runs during
// the V→N detach, before the switch commits.
func TestDetachRunsQuiescers(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	ran := 0
	modeWhenRun := ModeNative
	mc.RegisterDetachQuiescer("test-dp", func(c *hw.CPU) error {
		ran++
		modeWhenRun = mc.Mode()
		return nil
	})
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("quiescer ran %d times, want 1", ran)
	}
	// The quiescer drains while the VMM is still up: mode not yet native.
	if modeWhenRun == ModeNative {
		t.Fatal("quiescer ran after the switch committed")
	}
	// Attach must not run it again.
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("quiescer ran on attach (count %d)", ran)
	}
}

// TestQuiescerErrorAbortsSwitch: a datapath that cannot drain keeps the
// system virtual — the switch fails, is accounted, and the mode is
// unchanged.
func TestQuiescerErrorAbortsSwitch(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("in-flight I/O will not drain")
	mc.RegisterDetachQuiescer("wedged", func(c *hw.CPU) error { return boom })
	failedBefore := mc.Stats.FailedSwitches.Load()
	if err := mc.SwitchSync(c, ModeNative); err == nil {
		t.Fatal("switch succeeded past a wedged quiescer")
	}
	if mc.Mode() != ModePartialVirtual {
		t.Fatalf("mode %v after aborted detach, want partial-virtual", mc.Mode())
	}
	if mc.Stats.FailedSwitches.Load() != failedBefore+1 {
		t.Fatal("failed switch not accounted")
	}
	if e := mc.LastSwitchError(); e == nil || !strings.Contains(e.Error(), "wedged") {
		t.Fatalf("LastSwitchError = %v, want quiesce wedged error", e)
	}

	// Unregister the wedged datapath: the switch goes through.
	mc.UnregisterDetachQuiescer("wedged")
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if mc.Mode() != ModeNative {
		t.Fatalf("mode %v", mc.Mode())
	}
}

// TestQuiescerSameNameReplaces: re-registering under the same name
// replaces the callback instead of stacking a stale one.
func TestQuiescerSameNameReplaces(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
		t.Fatal(err)
	}
	var got string
	mc.RegisterDetachQuiescer("dp", func(c *hw.CPU) error { got = "old"; return nil })
	mc.RegisterDetachQuiescer("dp", func(c *hw.CPU) error { got = "new"; return nil })
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		t.Fatal(err)
	}
	if got != "new" {
		t.Fatalf("ran %q, want the replacement", got)
	}
}
