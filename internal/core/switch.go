package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/xen"
)

// modeSwitchISR is the self-virtualization interrupt handler (§5.1.3):
// it runs uninterruptibly, gates on the virtualization-object reference
// count, coordinates the other processors, applies the state-transfer
// functions and reloads hardware control state, and finally patches the
// interrupt return frame so execution resumes at the new privilege
// level.
func (mc *Mercury) modeSwitchISR(c *hw.CPU, f *hw.TrapFrame) {
	target := Mode(mc.pending.Load())
	if target < 0 || target == mc.Mode() {
		mc.pending.Store(-1)
		return
	}

	h := mc.tel()
	var col *obs.Collector
	if h != nil {
		col = h.col
	}

	// Commit gate: sensitive code must not be in flight (§5.1.1). The
	// kernel would otherwise be left straddling two modes. The retry
	// budget bounds a sensitive section that never drains: past
	// MaxDeferrals the request is abandoned and reported, instead of
	// re-arming forever while SwitchSync spins unbounded.
	mc.step(c, StepGateCheck, target)
	if !CommitGateOpen(mc.K.VO().Refs()) {
		mc.deferSwitch(c, h, target)
		return
	}

	// SMP: bring every other processor to a safe rendezvous point
	// before touching global state (§5.4).
	mc.step(c, StepRendezvousGather, target)
	gsp := obs.Begin(col, c.ID, c.Now(), "switch/rendezvous-gather")
	release := mc.rendezvous(c, target)
	gsp.End(c.Now())

	// Re-check the commit gate now that every other processor is parked:
	// an operation that entered the virtualization object between the
	// first check and the rendezvous IPI is parked mid-operation on an
	// AP, still holding the refcount, and committing under it would land
	// its remaining stores in the wrong mode (under the journal policy,
	// a direct memory write the attached VMM never sees). No new
	// operation can begin while the APs are held, so a zero count here
	// is final. internal/mc proves this mechanically: reverting this
	// recheck (the PR-3 TOCTOU bug, mc.BugTOCTOU) yields a commit with
	// the refcount held within a handful of interleavings.
	mc.step(c, StepGateRecheck, target)
	if !CommitGateOpen(mc.K.VO().Refs()) {
		mc.smp.target.Store(int32(mc.Mode())) // APs reload the old mode
		mc.step(c, StepRendezvousRelease, target)
		release()
		mc.deferSwitch(c, h, target)
		return
	}

	// The root span opens at the same instant the cycle accounting
	// starts, so its duration equals Stats.LastAttachCyc/LastDetachCyc
	// and the phase spans inside attach/detach tile it exactly.
	mc.step(c, StepCommit, target)
	start := c.Now()
	rootName := "switch/attach"
	if target == ModeNative {
		rootName = "switch/detach"
	}
	root := obs.Begin(col, c.ID, start, rootName)
	var err error
	switch {
	case target == ModeNative:
		err = mc.detach(c, f)
		if err == nil {
			end := c.Now()
			mc.Stats.LastDetachCyc.Store(end - start)
			mc.Stats.Detaches.Add(1)
			if h != nil {
				h.detaches.Inc()
				h.detachCyc.Observe(end - start)
			}
		}
	default:
		err = mc.attach(c, f, target)
		if err == nil {
			end := c.Now()
			mc.Stats.LastAttachCyc.Store(end - start)
			mc.Stats.Attaches.Add(1)
			if h != nil {
				h.attaches.Inc()
				h.attachCyc.Observe(end - start)
			}
		}
	}
	if err != nil {
		// Failure-resistant switch (§8 future work, implemented here):
		// attach/detach rolled themselves back; the system keeps running
		// in its previous mode and the failure is reported, not fatal.
		root.EndArg(c.Now(), 1)
		mc.Stats.FailedSwitches.Add(1)
		if h != nil {
			h.failed.Inc()
		}
		mc.event(h, obs.EvSwitchFailed, c.Now(), uint64(target), 0)
		mc.setLastError(err)
		mc.smp.target.Store(int32(mc.Mode())) // APs reload the old mode
		mc.pending.Store(-1)
		mc.step(c, StepRendezvousRelease, target)
		rsp := obs.Begin(col, c.ID, c.Now(), "switch/rendezvous-release")
		release()
		rsp.End(c.Now())
		return
	}
	root.EndArg(c.Now(), 0)
	mc.event(h, obs.EvModeSwitch, c.Now(), uint64(target), c.Now()-start)
	mc.setLastError(nil)
	if mc.VMM.Trace != nil {
		if target == ModeNative {
			mc.VMM.Trace.Emit(c, xen.TrcDetach, mc.Dom.ID, uint64(c.Now()-start))
		} else {
			mc.VMM.Trace.Emit(c, xen.TrcAttach, mc.Dom.ID, uint64(c.Now()-start))
		}
	}
	mc.mode.Store(int32(target))
	mc.pending.Store(-1)
	mc.step(c, StepRendezvousRelease, target)
	rsp := obs.Begin(col, c.ID, c.Now(), "switch/rendezvous-release")
	release()
	rsp.End(c.Now())
}

// deferSwitch postpones the pending switch via the §5.1.1 retry timer —
// backing off exponentially (with deterministic seeded jitter) as the
// same request keeps finding sensitive code in flight — or abandons it
// as starved once the retry budget is spent.
func (mc *Mercury) deferSwitch(c *hw.CPU, h *coreObs, target Mode) {
	mc.Stats.Deferred.Add(1)
	if h != nil {
		h.deferred.Inc()
		h.col.Tracer.Instant(c.ID, c.Now(), "switch/deferred", uint64(target))
	}
	mc.event(h, obs.EvSwitchDeferred, c.Now(), uint64(target),
		uint64(mc.deferrals.Load()+1))
	n := mc.deferrals.Add(1)
	if DeferVerdict(n, mc.maxDeferrals) {
		mc.step(c, StepStarve, target)
		mc.Stats.StarvedSwitches.Add(1)
		if h != nil {
			h.starved.Inc()
			h.col.Tracer.Instant(c.ID, c.Now(), "switch/starved", uint64(target))
		}
		mc.event(h, obs.EvSwitchStarved, c.Now(), uint64(target), uint64(n))
		mc.setLastError(fmt.Errorf(
			"core: switch to %v starved by sensitive code (%d deferrals)",
			target, n))
		mc.deferrals.Store(0)
		mc.pending.Store(-1)
		return
	}
	mc.step(c, StepDeferArm, target)
	// Bounded exponential backoff: a section that drains in one tick
	// retries in one tick; one that keeps refusing is probed ever more
	// rarely (up to BackoffCapMultiple ticks), and the seeded jitter
	// keeps a fleet's retries from beating in lockstep.
	state := mc.backoffRng.Load()
	delay := BackoffDelay(mc.retryTicks, n, &state)
	mc.backoffRng.Store(state)
	mc.event(h, obs.EvSwitchBackoff, c.Now(), delay, uint64(n))
	mc.K.AddTimer(c, c.Now()+delay, func(tc *hw.CPU) {
		mc.step(tc, StepRetryFire, target)
		tc.LAPIC.Post(hw.VecModeSwitch)
	})
}

// attach activates the pre-cached VMM underneath the running kernel
// (native -> partial/full virtual). On failure it rolls the hardware
// and kernel state back so the system keeps running natively.
func (mc *Mercury) attach(c *hw.CPU, f *hw.TrapFrame, target Mode) error {
	k, v := mc.K, mc.VMM
	col := mc.telCol()

	// -- state reloading, part 1 (§5.1.3): the VMM takes over the
	// hardware. Its descriptor tables carry kernel descriptors at PL1.
	ph := obs.Begin(col, c.ID, c.Now(), "phase/state-reload")
	prevPriv := mc.Dom.Privileged
	v.Activate(c)
	v.SetCurrent(c, mc.Dom)
	mc.Dom.State = xen.DomRunning
	mc.Dom.Privileged = target == ModePartialVirtual
	c.Charge(mc.M.Costs.StateReload)
	ph.End(c.Now())

	rollback := func() {
		mc.Dom.Privileged = prevPriv
		v.Deactivate(c)
		v.SetCurrent(c, nil)
		c.Lgdt(k.GDT)
		c.Lidt(k.IDT)
		k.RearmTick(c)
	}

	// -- frame accounting (§5.1.2): under the recompute policy the
	// (stale) table is rebuilt by scanning and pinning every live root —
	// sharded across the CPUs parked at the rendezvous when there is
	// more than one; under the journal policy only the dirty slots
	// recorded while detached are replayed; under active tracking it is
	// already valid. A validation failure here means the OS was in an
	// inconsistent state (§8): roll back.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/frame-recompute")
	var ferr error
	switch mc.Policy {
	case TrackRecompute:
		ferr = v.RecomputeFrameInfoAuto(c, mc.Dom, k.LiveRoots(c), mc.recomputeWorkers())
	case TrackJournal:
		ferr = v.JournalReattach(c, mc.Dom, k.LiveRoots(c), mc.recomputeWorkers())
	}
	if ferr != nil {
		ph.End(c.Now())
		rollback()
		return fmt.Errorf("attach: %w", ferr)
	}
	ph.End(c.Now())

	// -- state transfer (§5.1.2): kernel segments drop to PL1; cached
	// selectors on sleeping threads' kernel stacks are patched; the
	// kernel's trap table and timer move behind the VMM.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/segment-pl-flip")
	k.GDT.SetKernelDPL(hw.PL1)
	mc.fixupSelectors(c, hw.PL0, hw.PL1)
	ph.End(c.Now())
	ph = obs.Begin(col, c.ID, c.Now(), "phase/interrupt-rebind")
	// One multicall registers the trap table and rebinds the virtual
	// timer in a single VMM entry instead of two world switches.
	var rebind xen.Multicall
	rebind.AddSetTrapTable(k.TrapGates())
	rebind.AddBindVirqTimer(k.TimerUpcall())
	if err := v.HypMulticall(c, mc.Dom, &rebind); err != nil {
		ph.End(c.Now())
		k.GDT.SetKernelDPL(hw.PL0)
		mc.fixupSelectors(c, hw.PL1, hw.PL0)
		rollback()
		return fmt.Errorf("attach: interrupt rebind: %w", err)
	}
	ph.End(c.Now())

	// -- shadow mode only: hardware must leave the guest's own tables
	// and run on the freshly translated shadows (§3.2.2). Direct mode
	// skips this entirely — the reason Mercury prefers it.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/shadow-translate")
	if v.ShadowMode {
		groot := c.ReadCR3()
		if mc.Dom.HasPinned(groot) {
			hwRoot, err := v.HWRoot(c, mc.Dom, groot)
			if err != nil {
				ph.End(c.Now())
				rollback()
				return fmt.Errorf("attach: building live shadow: %w", err)
			}
			mc.Dom.VCPU0().SetCR3(groot)
			c.WriteCR3(hwRoot)
		}
	}
	ph.End(c.Now())

	// -- relocation (§4.2): swap the virtualization object pointer.
	// The interrupted context then resumes deprivileged: kernel-mode
	// frames get their privilege bits patched in the interrupt return
	// stack (§5.1.3).
	ph = obs.Begin(col, c.ID, c.Now(), "phase/vo-relocate")
	k.SetVO(mc.VirtualVO)
	k.RearmTick(c)
	patchFramePL(f, hw.PL0, hw.PL1)
	ph.End(c.Now())
	return nil
}

// detach deactivates the VMM and returns the kernel to bare hardware
// (virtual -> native).
func (mc *Mercury) detach(c *hw.CPU, f *hw.TrapFrame) error {
	k, v := mc.K, mc.VMM
	col := mc.telCol()

	// -- datapath quiesce (§6.3): registered datapaths drain their
	// in-flight I/O, end their grants, and tear down the client domains
	// they serve. Runs before the hosted-domains check so a quiescer
	// that destroys its clients satisfies it; an error aborts the
	// switch and the system keeps running virtual.
	qp := obs.Begin(col, c.ID, c.Now(), "phase/io-quiesce")
	if err := mc.runDetachQuiescers(c); err != nil {
		qp.EndArg(c.Now(), 1)
		return fmt.Errorf("detach: %w", err)
	}
	qp.End(c.Now())

	// A driver domain hosting other live domains cannot leave: they
	// would lose their device path. They must be migrated or destroyed
	// first (§6.3).
	for _, d := range v.Domains {
		if d != mc.Dom && d.State != xen.DomShutdown {
			return fmt.Errorf("detach: dom%d (%s) still hosted", d.ID, d.Name)
		}
	}

	// -- shadow mode only: point hardware back at the guest's own
	// tables before the shadows are torn down.
	ph := obs.Begin(col, c.ID, c.Now(), "phase/shadow-return")
	if v.ShadowMode {
		if groot := mc.Dom.VCPU0().CR3(); groot != 0 {
			c.WriteCR3(groot)
		}
	}
	ph.End(c.Now())

	// -- frame accounting: drop the VMM's type/count state. Cheap —
	// this asymmetry is why detach (~0.06 ms) is faster than attach
	// (~0.22 ms) (§7.4). The journal policy is cheaper still: the table
	// is frozen in place and the dirty-frame ring armed.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/frame-release")
	switch mc.Policy {
	case TrackRecompute:
		v.ReleaseFrameInfo(c, mc.Dom)
	case TrackJournal:
		v.JournalDetach(c, mc.Dom)
	}
	ph.End(c.Now())

	// -- state transfer: kernel segments return to PL0; cached
	// selectors on sleeping threads are patched back.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/segment-pl-flip")
	k.GDT.SetKernelDPL(hw.PL0)
	mc.fixupSelectors(c, hw.PL1, hw.PL0)
	ph.End(c.Now())

	// -- state reloading: the kernel re-owns the hardware tables. The
	// handler runs at PL0 (VMM context), so the privileged loads are
	// legal here.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/state-reload")
	v.Deactivate(c)
	v.SetCurrent(c, nil)
	c.Lgdt(k.GDT)
	c.Lidt(k.IDT)
	c.Charge(mc.M.Costs.StateReload)
	ph.End(c.Now())

	// -- relocation: swap the object pointer, re-arm the timer on bare
	// hardware, and repatch the interrupt return frame.
	ph = obs.Begin(col, c.ID, c.Now(), "phase/vo-relocate")
	k.SetVO(mc.NativeVO)
	k.RearmTick(c)
	patchFramePL(f, hw.PL1, hw.PL0)
	ph.End(c.Now())
	return nil
}

// recomputeWorkers returns how many CPUs the attach-time frame
// recompute may shard across: every processor, since the APs are parked
// at the §5.4 rendezvous for the duration of the switch.
func (mc *Mercury) recomputeWorkers() int { return len(mc.M.CPUs) }

// fixupSelectors is the code stub of §5.1.2: it walks every sleeping
// thread's kernel stack and rewrites the privilege bits of cached
// segment selectors from the old kernel PL to the new one. Without it,
// the first descheduled thread to resume would pop stale selectors and
// take a general protection fault.
func (mc *Mercury) fixupSelectors(c *hw.CPU, from, to uint8) {
	for _, p := range mc.K.SleepingProcs(c) {
		for _, fr := range p.SavedFrames {
			c.Charge(mc.M.Costs.SelectorFixup)
			patchFramePL(fr, from, to)
			mc.Stats.FixedFrames.Add(1)
		}
	}
}

// patchFramePL rewrites kernel selectors in one frame. User-mode frames
// (RPL3) are untouched: user descriptors keep DPL3 in both modes.
func patchFramePL(f *hw.TrapFrame, from, to uint8) {
	if f.CS.Index() == hw.GDTKernelCode && f.CS.RPL() == from {
		f.CS = f.CS.WithRPL(to)
	}
	if f.SS.Index() == hw.GDTKernelData && f.SS.RPL() == from {
		f.SS = f.SS.WithRPL(to)
	}
}
