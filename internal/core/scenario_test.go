package core

import (
	"fmt"
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
)

func TestLiveUpdatePatchesHandlerAndReturnsNative(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()

	patched := false
	oldGate := mc.K.IDT.Get(hw.VecNIC)
	patch := KernelPatch{
		Name: "cve-fix-nic-isr",
		Apply: func(k *guest.Kernel) error {
			k.IDT.Set(hw.VecNIC, hw.Gate{Present: true, Target: hw.PL0,
				Handler: func(cc *hw.CPU, f *hw.TrapFrame) {
					patched = true
					if oldGate.Present {
						oldGate.Handler(cc, f)
					}
				}})
			return nil
		},
		Validate: func(k *guest.Kernel) error {
			if !k.IDT.Get(hw.VecNIC).Present {
				return fmt.Errorf("gate lost")
			}
			return nil
		},
	}
	rep, err := mc.LiveUpdate(c, patch)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WasNative || mc.Mode() != ModeNative {
		t.Fatal("system did not return to native mode")
	}
	if rep.AttachedForUS <= 0 {
		t.Fatal("no attach window recorded")
	}
	// The patched handler is live: raise the NIC vector.
	c.LAPIC.Post(hw.VecNIC)
	c.Charge(10)
	if !patched {
		t.Fatal("patched handler not dispatched")
	}
	if mc.Stats.Attaches.Load() != 1 || mc.Stats.Detaches.Load() != 1 {
		t.Fatal("update did not attach/detach exactly once")
	}
}

func TestLiveUpdateFailedApplyDetaches(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	_, err := mc.LiveUpdate(c, KernelPatch{
		Name:  "bad",
		Apply: func(k *guest.Kernel) error { return fmt.Errorf("nope") },
	})
	if err == nil {
		t.Fatal("failed patch reported success")
	}
	if mc.Mode() != ModeNative {
		t.Fatal("failed update left the VMM attached")
	}
}

func TestSelfHealingRepairsRunqueue(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	sensors := []Sensor{RunqueueSensor()}

	// Quiet system: no healing episode.
	rep, err := mc.SelfHeal(c, sensors, RunqueueRepair())
	if err != nil || rep != nil {
		t.Fatalf("healthy system healed: %v %v", rep, err)
	}

	// Inject corruption; the sensor fires, the VMM attaches, repairs,
	// and detaches.
	mc.K.InjectRunqueueCorruption()
	rep, err = mc.SelfHeal(c, sensors, RunqueueRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Healed {
		t.Fatalf("healing failed: %+v", rep)
	}
	if rep.Sensor != "runqueue-integrity" {
		t.Fatalf("wrong sensor: %s", rep.Sensor)
	}
	if mc.Mode() != ModeNative {
		t.Fatal("system not back in native mode")
	}
	if err := mc.K.CheckRunqueue(); err != nil {
		t.Fatalf("runqueue still corrupt: %v", err)
	}
}

func TestSelfHealingPersistentAnomalyReported(t *testing.T) {
	mc := newMercury(t, 1, TrackRecompute)
	c := mc.M.BootCPU()
	badSensor := Sensor{Name: "always-bad",
		Check: func(k *guest.Kernel) error { return fmt.Errorf("anomaly") }}
	rep, err := mc.SelfHeal(c, []Sensor{badSensor},
		func(cc *hw.CPU, m *Mercury) error { return nil })
	if err == nil {
		t.Fatal("persistent anomaly not reported")
	}
	if rep == nil || rep.Healed {
		t.Fatal("report claims healed")
	}
	if mc.Mode() != ModeNative {
		t.Fatal("VMM left attached after failed healing")
	}
}
