package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/xen"
)

// Surviving predicted hardware failures on HPC clusters (§6.5): hardware
// monitors feed a failure predictor; when a failure is predicted, the
// node self-virtualizes and its execution environment migrates to a
// healthy node "with no need to stop and restart" the running programs.

// FailurePredictor evaluates the machine's sensor bank against failure
// thresholds (Leangsuksun et al.'s policy-based prediction, [51]).
type FailurePredictor struct {
	// MaxCPUTempC, MinFanRPM, VoltTolerance define the healthy envelope.
	MaxCPUTempC   float64
	MinFanRPM     float64
	CoreVoltNom   float64
	PSUVoltNom    float64
	VoltTolerance float64 // fractional deviation allowed
}

// DefaultPredictor returns thresholds for the simulated Xeon platform.
func DefaultPredictor() FailurePredictor {
	return FailurePredictor{
		MaxCPUTempC:   85,
		MinFanRPM:     3000,
		CoreVoltNom:   1.32,
		PSUVoltNom:    12.0,
		VoltTolerance: 0.10,
	}
}

// Predict returns a non-nil error describing the predicted failure, or
// nil when the node looks healthy.
func (fp FailurePredictor) Predict(s *hw.SensorBank) error {
	if t := s.Read(hw.SensorCPUTempC); t > fp.MaxCPUTempC {
		return fmt.Errorf("cpu temperature %.0f C exceeds %.0f C", t, fp.MaxCPUTempC)
	}
	if r := s.Read(hw.SensorFanRPM); r < fp.MinFanRPM {
		return fmt.Errorf("fan at %.0f rpm below %.0f", r, fp.MinFanRPM)
	}
	dev := func(v, nom float64) float64 {
		d := v/nom - 1
		if d < 0 {
			d = -d
		}
		return d
	}
	if v := s.Read(hw.SensorCoreVolt); dev(v, fp.CoreVoltNom) > fp.VoltTolerance {
		return fmt.Errorf("core voltage %.2f V out of tolerance", v)
	}
	if v := s.Read(hw.SensorPSUVolt); dev(v, fp.PSUVoltNom) > fp.VoltTolerance {
		return fmt.Errorf("psu voltage %.2f V out of tolerance", v)
	}
	return nil
}

// EvacuationReport describes one completed node evacuation.
type EvacuationReport struct {
	Predicted    string
	Evacuated    []string // names of migrated domains
	Migration    []*migrate.LiveReport
	NodeReleased bool // the failing node detached its VMM afterwards
}

// EvacuateOnFailure polls the predictor; if a failure is predicted, the
// node attaches its VMM (if not attached), live-migrates every hosted
// domain to the destination VMM, and — now empty — detaches so the node
// can be powered off for repair. Returns nil, nil when healthy.
func (mc *Mercury) EvacuateOnFailure(c *hw.CPU, fp FailurePredictor,
	dst *xen.VMM, dstCaller *xen.Domain, cfg migrate.LiveConfig) (*EvacuationReport, error) {

	predicted := fp.Predict(mc.M.Sensors)
	if predicted == nil {
		return nil, nil
	}
	return mc.Evacuate(c, predicted.Error(), dst, dstCaller, cfg)
}

// Evacuate unconditionally runs the §6.5 evacuation for the given
// reason: self-virtualize if needed, live-migrate every hosted domain
// to dst, detach. It is the terminal step of the healing escalation
// path (HealOrEvacuate) as well as EvacuateOnFailure's mechanism.
func (mc *Mercury) Evacuate(c *hw.CPU, reason string,
	dst *xen.VMM, dstCaller *xen.Domain, cfg migrate.LiveConfig) (*EvacuationReport, error) {

	rep := &EvacuationReport{Predicted: reason}
	sp := obs.Begin(mc.telCol(), c.ID, c.Now(), "core/evacuate")
	defer func() { sp.EndArg(c.Now(), uint64(len(rep.Evacuated))) }()
	if h := mc.tel(); h != nil {
		h.evacs.Inc()
	}

	if mc.Mode() == ModeNative {
		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			return rep, fmt.Errorf("core: self-virtualizing for evacuation: %w", err)
		}
	}
	for _, d := range mc.HostedDomains() {
		moved, lr, err := migrate.Live(c, mc.VMM, mc.Dom, d, dst, dstCaller, cfg)
		if err != nil {
			return rep, fmt.Errorf("core: evacuating dom%d: %w", d.ID, err)
		}
		rep.Evacuated = append(rep.Evacuated, moved.Name)
		rep.Migration = append(rep.Migration, lr)
	}
	// Nothing hosted any more: release the node.
	if err := mc.SwitchSync(c, ModeNative); err != nil {
		return rep, fmt.Errorf("core: detaching after evacuation: %w", err)
	}
	rep.NodeReleased = true
	return rep, nil
}

// EscalationReport describes one sensor → SelfHeal → EvacuateOnFailure
// escalation episode.
type EscalationReport struct {
	Heal       *HealReport
	Evacuation *EvacuationReport
	Escalated  bool // healing failed, evacuation was attempted
}

// HealOrEvacuate is the healing escalation path: run SelfHeal over the
// sensors; if an anomaly was detected but could not be repaired, the
// node is presumed unreliable and evacuates to dst (§6.2 healing backed
// by §6.5 evacuation). Returns nil, nil when no sensor fired.
func (mc *Mercury) HealOrEvacuate(c *hw.CPU, sensors []Sensor, fallback Repair,
	dst *xen.VMM, dstCaller *xen.Domain, cfg migrate.LiveConfig) (*EscalationReport, error) {

	heal, healErr := mc.SelfHeal(c, sensors, fallback)
	if heal == nil && healErr == nil {
		return nil, nil
	}
	rep := &EscalationReport{Heal: heal}
	if healErr == nil && heal != nil && heal.Healed {
		return rep, nil
	}
	rep.Escalated = true
	ev, evErr := mc.Evacuate(c, fmt.Sprintf("healing failed: %v", healErr), dst, dstCaller, cfg)
	rep.Evacuation = ev
	if evErr != nil {
		return rep, fmt.Errorf("core: healing failed (%v); escalation: %w", healErr, evErr)
	}
	return rep, nil
}
