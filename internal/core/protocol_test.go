package core

import (
	"testing"

	"repro/internal/hw"
)

func TestCommitGateOpen(t *testing.T) {
	if !CommitGateOpen(0) {
		t.Fatal("gate shut with no sensitive code in flight")
	}
	if CommitGateOpen(1) || CommitGateOpen(42) {
		t.Fatal("gate open with the refcount held")
	}
}

func TestDeferVerdict(t *testing.T) {
	if DeferVerdict(1, 2) {
		t.Fatal("starved inside the budget")
	}
	if !DeferVerdict(2, 2) || !DeferVerdict(3, 2) {
		t.Fatal("not starved past the budget")
	}
}

// TestBackoffDelayDeterministic: the same seed yields the same delay
// sequence — chaos campaigns and the divergence audit replay bit-exact.
func TestBackoffDelayDeterministic(t *testing.T) {
	const base = hw.Cycles(10000)
	s1, s2 := uint64(7), uint64(7)
	for n := int32(1); n <= 10; n++ {
		a := BackoffDelay(base, n, &s1)
		b := BackoffDelay(base, n, &s2)
		if a != b {
			t.Fatalf("deferral %d: %d vs %d from the same seed", n, a, b)
		}
	}
	s3 := uint64(8)
	diverged := false
	for n := int32(1); n <= 10; n++ {
		s1v := uint64(7)
		if BackoffDelay(base, n, &s3) != BackoffDelay(base, n, &s1v) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds never perturbed the delay")
	}
}

// TestBackoffDelayBounds: every delay stays within the jitter band of
// its nominal exponential value, and the nominal value is capped at
// BackoffCapMultiple times the base.
func TestBackoffDelayBounds(t *testing.T) {
	const base = hw.Cycles(10000)
	state := uint64(12345)
	for n := int32(1); n <= 12; n++ {
		nominal := base
		for i := int32(1); i < n && nominal < base*BackoffCapMultiple; i++ {
			nominal <<= 1
		}
		if nominal > base*BackoffCapMultiple {
			nominal = base * BackoffCapMultiple
		}
		d := BackoffDelay(base, n, &state)
		span := nominal / 8 // the ±12.5% jitter band
		if d < nominal-span || d > nominal+span {
			t.Fatalf("deferral %d: delay %d outside [%d, %d]",
				n, d, nominal-span, nominal+span)
		}
	}
	// Past the knee every delay is pinned to the capped nominal: never
	// more than cap plus its jitter span.
	capped := base * BackoffCapMultiple
	for n := int32(4); n <= 32; n += 7 {
		d := BackoffDelay(base, n, &state)
		if d > capped+capped/8 || d < capped-capped/8 {
			t.Fatalf("deferral %d: capped delay %d strays from %d", n, d, capped)
		}
	}
}

// TestBackoffDelayGrowth: with jitter held to its band, the nominal
// schedule doubles per deferral until the cap.
func TestBackoffDelayGrowth(t *testing.T) {
	const base = hw.Cycles(1 << 20) // power of two: exact doubling
	state := uint64(99)
	prevFloor := hw.Cycles(0)
	for n := int32(1); n <= 4; n++ {
		d := BackoffDelay(base, n, &state)
		floor := (base << (n - 1)) - (base<<(n-1))/8
		if d < floor {
			t.Fatalf("deferral %d: delay %d below jittered floor %d", n, d, floor)
		}
		if floor <= prevFloor {
			t.Fatalf("schedule not growing at deferral %d", n)
		}
		prevFloor = floor
	}
}

func TestBackoffDelayZeroBase(t *testing.T) {
	state := uint64(1)
	if d := BackoffDelay(0, 3, &state); d != 0 {
		t.Fatalf("zero base gave %d", d)
	}
}

// TestBackoffTinyBaseNoJitter: a base too small to carve a jitter span
// returns the exact nominal delay (the jitter path must not divide by
// zero or return a zero delay).
func TestBackoffTinyBaseNoJitter(t *testing.T) {
	state := uint64(1)
	for n := int32(1); n <= 3; n++ { // past n=3 the cap is wide enough to jitter
		d := BackoffDelay(1, n, &state)
		want := hw.Cycles(1) << (n - 1)
		if d != want {
			t.Fatalf("deferral %d: delay %d, want exact nominal %d", n, d, want)
		}
	}
}
