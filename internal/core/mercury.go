package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/vo"
	"repro/internal/xen"
)

// Mode is the operating system's execution mode.
type Mode int32

// Execution modes (§6): native = bare hardware at PL0; partial-virtual =
// on the VMM as the (privileged) driver domain, able to host other
// domains; full-virtual = on the VMM as an unprivileged, migratable
// domain.
const (
	ModeNative Mode = iota
	ModePartialVirtual
	ModeFullVirtual
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModePartialVirtual:
		return "partial-virtual"
	case ModeFullVirtual:
		return "full-virtual"
	}
	return fmt.Sprintf("mode%d", int32(m))
}

// TrackingPolicy selects how the VMM's frame accounting is kept valid
// across native-mode execution (§5.1.2).
type TrackingPolicy int

const (
	// TrackRecompute re-computes and synchronizes frame info during the
	// mode switch — the paper's preferred approach (no native overhead,
	// longer attach).
	TrackRecompute TrackingPolicy = iota
	// TrackActive mirrors every native page-table store into the VMM's
	// accounting (2–3 % native overhead, faster attach).
	TrackActive
	// TrackJournal keeps the detached frame table frozen and records
	// native page-table stores in a bounded dirty-frame journal; a
	// re-attach replays only the journaled slots, falling back to the
	// full recompute on ring overflow, structural changes, or a first
	// attach. Cheaper native overhead than TrackActive, near-recompute
	// robustness.
	TrackJournal
)

func (p TrackingPolicy) String() string {
	switch p {
	case TrackRecompute:
		return "recompute"
	case TrackActive:
		return "active"
	case TrackJournal:
		return "journal"
	}
	return fmt.Sprintf("policy%d", int(p))
}

// Stats records mode-switch behaviour.
type Stats struct {
	Attaches        atomic.Uint64
	Detaches        atomic.Uint64
	Deferred        atomic.Uint64 // switches postponed by a non-zero refcount
	FailedSwitches  atomic.Uint64 // switches rolled back (failure-resistant path)
	StarvedSwitches atomic.Uint64 // switches abandoned after MaxDeferrals retries
	FixedFrames     atomic.Uint64 // saved frames patched by the selector stub
	LastAttachCyc   atomic.Uint64
	LastDetachCyc   atomic.Uint64
}

// Mercury is one self-virtualizable system: a guest kernel plus its
// pre-cached VMM and the two virtualization-object instances.
type Mercury struct {
	M   *hw.Machine
	K   *guest.Kernel
	VMM *xen.VMM
	Dom *xen.Domain // the kernel's standing domain identity

	NativeVO  *vo.Native
	VirtualVO *vo.Virtual

	Policy TrackingPolicy

	// NodeID attributes this system's flight-recorder events to a fleet
	// node; -1 (the default) marks a standalone system. The fleet
	// controller sets it right after boot.
	NodeID int32

	mode atomic.Int32

	// pending is the requested transition, consumed by the interrupt
	// handler.
	pending atomic.Int32 // -1 none, else target Mode

	// retryTicks is the base deferred-switch retry interval in cycles
	// (the paper's example uses 10 ms — one 100 Hz tick). Successive
	// deferrals of one request back off exponentially from this base,
	// capped at BackoffCapMultiple times it, with deterministic jitter
	// drawn from backoffRng.
	retryTicks hw.Cycles

	// backoffRng is the seeded SplitMix64 state feeding retry jitter.
	// Atomic only because consecutive deferrals may execute on
	// different CPU-driver goroutines; the ISR itself never runs
	// concurrently with itself.
	backoffRng atomic.Uint64

	// stepObs, when set, receives every atomic protocol step
	// (protocol.go); nil in production.
	stepObs StepObserver

	// maxDeferrals bounds how many times one pending switch may be
	// deferred by a non-draining refcount before the request is
	// abandoned; deferrals counts them for the current request.
	maxDeferrals int32
	deferrals    atomic.Int32

	smp rendezvousState

	// quiesceMu guards quiescers: callbacks a datapath registers to
	// drain its in-flight work before a detach tears the VMM out from
	// under it (the §6.3 driver-domain quiesce contract).
	quiesceMu sync.Mutex
	quiescers []detachQuiescer

	// lastErr records the most recent switch failure (nil after a
	// successful switch).
	lastErr atomic.Pointer[switchError]

	// obsCache holds pre-resolved registry handles for the installed
	// collector so the switch path skips registry lookups.
	obsCache atomic.Pointer[coreObs]

	Stats Stats
}

// coreObs caches Mercury's telemetry handles for one collector.
type coreObs struct {
	col       *obs.Collector
	attaches  *obs.Counter
	detaches  *obs.Counter
	deferred  *obs.Counter
	failed    *obs.Counter
	starved   *obs.Counter
	healings  *obs.Counter
	evacs     *obs.Counter
	attachCyc *obs.Histogram
	detachCyc *obs.Histogram
	events    *obs.EventLog // nil for hand-built collectors without one
}

// tel returns the cached telemetry handles, or nil when no collector
// is installed. The disabled path is a single atomic load.
func (mc *Mercury) tel() *coreObs {
	col := mc.M.Telemetry()
	if col == nil {
		return nil
	}
	h := mc.obsCache.Load()
	if h == nil || h.col != col {
		r := col.Registry
		h = &coreObs{
			col:       col,
			attaches:  r.Counter("core", "attaches_total"),
			detaches:  r.Counter("core", "detaches_total"),
			deferred:  r.Counter("core", "switch_deferred_total"),
			failed:    r.Counter("core", "switch_failed_total"),
			starved:   r.Counter("core", "switch_starved_total"),
			healings:  r.Counter("core", "healings_total"),
			evacs:     r.Counter("core", "evacuations_total"),
			attachCyc: r.Histogram("core", "attach_cycles"),
			detachCyc: r.Histogram("core", "detach_cycles"),
			events:    col.Events,
		}
		mc.obsCache.Store(h)
	}
	return h
}

// event records a flight-recorder entry on the installed collector's
// event log, attributed to this system's node. h may be nil (no
// collector) and h.events may be nil (hand-built collector).
func (mc *Mercury) event(h *coreObs, kind obs.EventKind, ts, a, b uint64) {
	if h == nil || h.events == nil {
		return
	}
	h.events.Record(kind, mc.NodeID, ts, a, b)
}

// telCol returns the collector for span creation, or nil.
func (mc *Mercury) telCol() *obs.Collector {
	if h := mc.tel(); h != nil {
		return h.col
	}
	return nil
}

// switchError boxes an error for atomic storage.
type switchError struct{ err error }

func (mc *Mercury) setLastError(err error) {
	if err == nil {
		mc.lastErr.Store(nil)
		return
	}
	mc.lastErr.Store(&switchError{err: err})
}

// LastSwitchError returns the most recent mode-switch failure, or nil.
// A failed switch is not fatal (§8's failure-resistant switch): the
// system keeps running in its previous mode.
func (mc *Mercury) LastSwitchError() error {
	if e := mc.lastErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// Config assembles a Mercury system.
type Config struct {
	Machine *hw.Machine
	Policy  TrackingPolicy
	// KernelHz is the guest timer frequency (default 100 Hz).
	KernelHz uint64
	// ShadowPaging selects the VMM's shadow-paging mode instead of
	// direct paging (§3.2.2). Mercury's default is direct mode: shadow
	// mode makes every attach pay a full translation of the live page
	// tables — measured by bench.PagingAblation. Uniprocessor only.
	ShadowPaging bool
	// MaxDeferrals bounds how many times one pending mode switch may be
	// re-armed by the §5.1.1 retry timer before the request is abandoned
	// and LastSwitchError reports starvation (default DefaultMaxDeferrals;
	// a non-draining VO refcount would otherwise retry forever).
	MaxDeferrals int
	// JournalEntries sizes the dirty-frame journal ring under
	// TrackJournal (default xen.DefaultJournalEntries).
	JournalEntries int
	// BackoffSeed seeds the deterministic jitter on the deferred-switch
	// retry backoff (default DefaultBackoffSeed). Same seed, same
	// machine: same retry schedule.
	BackoffSeed uint64
	// LazyMMU enables the kernel's lazy-MMU batching (see
	// guest.Config.LazyMMU): MMU-heavy paths coalesce their sensitive
	// stores into multicalls when the system runs virtualized. Off by
	// default so the Table 1 reproduction measures the per-entry stream.
	LazyMMU bool
}

// DefaultMaxDeferrals is the default retry budget for a deferred switch
// — 100 retries at the 10 ms interval is a full second of a sensitive
// section refusing to drain.
const DefaultMaxDeferrals = 100

// DefaultBackoffSeed seeds the retry-jitter stream when Config leaves
// BackoffSeed zero.
const DefaultBackoffSeed = 0x6d65726375727931 // "mercury1"

// New builds a complete Mercury system on a fresh machine: the VMM is
// booted (pre-cached) first, then the kernel boots in native mode with
// Mercury's native virtualization object. The kernel starts in
// ModeNative with the VMM inactive in memory.
func New(cfg Config) (*Mercury, error) {
	m := cfg.Machine
	v, err := xen.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("core: pre-caching VMM: %w", err)
	}
	// The running OS's standing domain identity: adopted once at warmup
	// so a switch only touches per-switch state (§4.1).
	dom := v.AdoptDomain("mercury-os", m.Frames, true)

	nat := vo.NewNative(m)
	switch cfg.Policy {
	case TrackActive:
		nat.Track = &vo.Tracker{V: v, D: dom}
	case TrackJournal:
		if cfg.ShadowPaging {
			return nil, fmt.Errorf("core: the journal policy requires direct paging")
		}
		nat.Journal = v.EnableJournal(cfg.JournalEntries)
	}
	k, err := guest.Boot(m, guest.Config{
		Name:    "mercury-linux",
		VO:      nat,
		Frames:  m.Frames,
		HzTicks: cfg.KernelHz,
		LazyMMU: cfg.LazyMMU,
	})
	if err != nil {
		return nil, fmt.Errorf("core: booting kernel: %w", err)
	}
	mc := &Mercury{
		M: m, K: k, VMM: v, Dom: dom,
		NativeVO:  nat,
		VirtualVO: vo.NewVirtual(v, dom),
		Policy:    cfg.Policy,
		NodeID:    -1,
	}
	if cfg.ShadowPaging {
		if len(m.CPUs) > 1 {
			return nil, fmt.Errorf("core: shadow paging is uniprocessor-only in this build")
		}
		v.ShadowMode = true
	}
	mc.retryTicks = m.Hz / guest.DefaultHzTicks // 10 ms
	if cfg.BackoffSeed == 0 {
		cfg.BackoffSeed = DefaultBackoffSeed
	}
	mc.backoffRng.Store(cfg.BackoffSeed)
	mc.maxDeferrals = int32(cfg.MaxDeferrals)
	if mc.maxDeferrals <= 0 {
		mc.maxDeferrals = DefaultMaxDeferrals
	}
	mc.pending.Store(-1)
	mc.installGates()
	return mc, nil
}

// Mode returns the current execution mode.
func (mc *Mercury) Mode() Mode { return Mode(mc.mode.Load()) }

// installGates registers the self-virtualization interrupt handlers
// (§4.1) in both the kernel IDT (reachable in native mode) and the VMM
// IDT (reachable in virtual mode), plus the SMP rendezvous vector.
func (mc *Mercury) installGates() {
	gate := hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) { mc.modeSwitchISR(c, f) }}
	apGate := hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) { mc.apRendezvousISR(c, f) }}
	mc.K.IDT.Set(hw.VecModeSwitch, gate)
	mc.K.IDT.Set(hw.VecModeSwitchAP, apGate)
	mc.VMM.SetGate(hw.VecModeSwitch, gate)
	mc.VMM.SetGate(hw.VecModeSwitchAP, apGate)
}

// RequestSwitch asks for a transition to the target mode by raising the
// self-virtualization interrupt on the control processor. The switch
// happens in interrupt context; if sensitive code is in flight the
// handler re-arms itself via a retry timer (§5.1.1).
func (mc *Mercury) RequestSwitch(target Mode) error {
	cur := mc.Mode()
	if cur == target {
		return nil
	}
	if !mc.pending.CompareAndSwap(-1, int32(target)) {
		return fmt.Errorf("core: a mode switch is already pending")
	}
	mc.deferrals.Store(0)
	mc.M.BootCPU().LAPIC.Post(hw.VecModeSwitch)
	return nil
}

// SwitchSync requests a switch and spins (charging the calling CPU)
// until it commits. Intended for orchestration code running on the
// control processor's thread of execution. Application processors that
// no scheduler is currently driving get a temporary idle loop so they
// can take the rendezvous IPI (§5.4) — on hardware a halted core wakes
// on the interrupt by itself.
func (mc *Mercury) SwitchSync(c *hw.CPU, target Mode) error {
	failedBefore := mc.Stats.FailedSwitches.Load()
	done := make(chan struct{})
	var idlers sync.WaitGroup
	for _, other := range mc.M.CPUs {
		if other == c || !other.TryDrive() {
			continue
		}
		idlers.Add(1)
		go func(ap *hw.CPU) {
			defer idlers.Done()
			defer ap.ReleaseDrive()
			ap.IdleUntil(func() bool {
				select {
				case <-done:
					return true
				default:
					return false
				}
			})
		}(other)
	}
	err := mc.RequestSwitch(target)
	if err == nil {
		for mc.Mode() != target {
			c.Charge(50)
			// A failed (rolled-back) switch clears the request without
			// changing the mode; stop waiting and report it. (A deferred
			// commit keeps the request pending between retries, so this
			// only triggers on genuine failure.)
			if mc.pending.Load() == -1 && mc.Mode() != target {
				if e := mc.LastSwitchError(); e != nil {
					err = e
					break
				}
			}
		}
	}
	close(done)
	idlers.Wait()
	if err != nil && mc.Stats.FailedSwitches.Load() > failedBefore {
		// A rolled-back switch must leave the whole system
		// quiescent-clean in its previous mode — verify, don't assume.
		// Starved switches are exempt: the sensitive section that
		// starved them legitimately still holds the refcount, so the
		// quiescence oracle cannot run until the holder drains.
		if verr := mc.CheckInvariants(c); verr != nil {
			err = fmt.Errorf("%w; post-rollback invariants: %v", err, verr)
		}
	}
	return err
}

// detachQuiescer is one named quiesce callback.
type detachQuiescer struct {
	name string
	fn   func(c *hw.CPU) error
}

// RegisterDetachQuiescer installs a callback that detach runs — before
// the hosted-domains check — to drain in-flight work that depends on
// the VMM: an I/O datapath drains its rings, ends its grants, and
// destroys the client domains it was serving. A quiescer that errors
// aborts the switch (the system stays virtual, failure-resistant).
// Registering the same name again replaces the previous callback.
func (mc *Mercury) RegisterDetachQuiescer(name string, fn func(c *hw.CPU) error) {
	mc.quiesceMu.Lock()
	defer mc.quiesceMu.Unlock()
	for i := range mc.quiescers {
		if mc.quiescers[i].name == name {
			mc.quiescers[i].fn = fn
			return
		}
	}
	mc.quiescers = append(mc.quiescers, detachQuiescer{name: name, fn: fn})
}

// UnregisterDetachQuiescer removes a quiescer by name (no-op if absent).
func (mc *Mercury) UnregisterDetachQuiescer(name string) {
	mc.quiesceMu.Lock()
	defer mc.quiesceMu.Unlock()
	for i := range mc.quiescers {
		if mc.quiescers[i].name == name {
			mc.quiescers = append(mc.quiescers[:i], mc.quiescers[i+1:]...)
			return
		}
	}
}

// runDetachQuiescers invokes every registered quiescer in registration
// order, stopping at the first error.
func (mc *Mercury) runDetachQuiescers(c *hw.CPU) error {
	mc.quiesceMu.Lock()
	qs := make([]detachQuiescer, len(mc.quiescers))
	copy(qs, mc.quiescers)
	mc.quiesceMu.Unlock()
	for _, q := range qs {
		if err := q.fn(c); err != nil {
			return fmt.Errorf("quiesce %s: %w", q.name, err)
		}
	}
	return nil
}

// HostedDomains returns the unprivileged domains currently hosted (only
// meaningful in partial-virtual mode).
func (mc *Mercury) HostedDomains() []*xen.Domain {
	var out []*xen.Domain
	for _, d := range mc.VMM.Domains {
		if d != mc.Dom {
			out = append(out, d)
		}
	}
	return out
}
