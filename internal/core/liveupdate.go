package core

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw"
)

// Live kernel update (§6.4). LUCOS needed a permanently resident VMM to
// patch a running kernel; with self-virtualization the VMM is attached
// only for the duration of the update and detached afterwards, so the
// update window is the only time any virtualization overhead is paid.

// KernelPatch is one live update: Apply rewrites kernel code/data (here:
// entries of the kernel's dispatch tables and handlers), Validate checks
// the patched kernel before the VMM steps away.
type KernelPatch struct {
	Name     string
	Apply    func(k *guest.Kernel) error
	Validate func(k *guest.Kernel) error
}

// UpdateReport describes one completed live update.
type UpdateReport struct {
	Patch         string
	AttachedForUS float64 // how long the VMM was resident (us)
	WasNative     bool
}

// LiveUpdate applies a patch to the running kernel under VMM
// supervision: if the system is in native mode the VMM is attached
// first and detached afterwards, so steady-state execution stays on
// bare hardware.
func (mc *Mercury) LiveUpdate(c *hw.CPU, patch KernelPatch) (*UpdateReport, error) {
	if patch.Apply == nil {
		return nil, fmt.Errorf("core: patch %q has no Apply", patch.Name)
	}
	rep := &UpdateReport{Patch: patch.Name, WasNative: mc.Mode() == ModeNative}
	if rep.WasNative {
		if err := mc.SwitchSync(c, ModePartialVirtual); err != nil {
			return nil, fmt.Errorf("core: attaching for update: %w", err)
		}
	}
	attachedAt := c.Now()

	// The VMM holds the kernel quiescent: in this simulation the caller
	// is the only activity, and the refcount gate already guaranteed no
	// sensitive code was in flight at attach.
	if err := patch.Apply(mc.K); err != nil {
		err = fmt.Errorf("core: applying %q: %w", patch.Name, err)
		if rep.WasNative {
			// The abort must leave the system exactly as it found it:
			// detach, then verify — a failed update that also strands
			// the VMM resident is two failures, and both get reported.
			if derr := mc.SwitchSync(c, ModeNative); derr != nil {
				return nil, fmt.Errorf("%v; rollback detach: %w", err, derr)
			}
			if verr := mc.CheckInvariants(c); verr != nil {
				return nil, fmt.Errorf("%v; post-abort invariants: %w", err, verr)
			}
		}
		return nil, err
	}
	// Patched trap handlers must be re-registered with the VMM (and will
	// be reloaded into the hardware IDT at detach).
	mc.VMM.HypSetTrapTable(c, mc.Dom, mc.K.TrapGates())
	if patch.Validate != nil {
		if err := patch.Validate(mc.K); err != nil {
			err = fmt.Errorf("core: validating %q: %w", patch.Name, err)
			// The VMM stays resident (the operator gets to inspect the
			// rejected kernel), but the abort still owes a verdict: the
			// attached system must verify clean for its current mode.
			if verr := mc.CheckInvariants(c); verr != nil {
				return nil, fmt.Errorf("%v; post-abort invariants: %w", err, verr)
			}
			return nil, err
		}
	}

	rep.AttachedForUS = float64(c.Now()-attachedAt) / float64(mc.M.Hz) * 1e6
	if rep.WasNative {
		if err := mc.SwitchSync(c, ModeNative); err != nil {
			return nil, fmt.Errorf("core: detaching after update: %w", err)
		}
	}
	return rep, nil
}
