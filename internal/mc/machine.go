package mc

import (
	"fmt"

	"repro/internal/core"
)

// The reduced Mercury machine: just enough state to express every
// interleaving of the mode-switch protocol. CPU 0 is the control
// processor (CP) executing the switch ISR's atomic steps; CPUs 1..K-1
// are application processors (APs) that park at the rendezvous; workers
// are in-flight virtualization-object operations (enter → sensitive
// store → exit) pinned to CPUs; the environment raises switch requests
// and fires the deferral/retry timer. All cycle accounting, descriptor
// tables and frame contents are abstracted away — what remains is the
// coordination skeleton whose interleavings the checker enumerates.
//
// The gate and retry decisions are the production functions
// (core.CommitGateOpen, core.DeferVerdict), not copies: a divergence
// between model and engine on those decisions is impossible by
// construction.

// MaxCPUs bounds K (CPU 0 is the CP; the fixed arrays keep State
// comparable and cheaply hashable).
const MaxCPUs = 4

// MaxWorkers bounds the number of concurrently modeled VO operations.
const MaxWorkers = 4

// jCap is the reduced dirty-journal capacity: replaying more than jCap
// recorded slots models the production ring-overflow fallback to a full
// recompute (same post-state, so the model folds the two paths).
const jCap = 3

// Reduced modes: the protocol's coordination behaviour only depends on
// which side of the native/virtual line each transition crosses.
const (
	modeNative  uint8 = 0
	modeVirtual uint8 = 1
)

// CP program locations.
const (
	cpIdle        uint8 = iota // no switch ISR in flight
	cpGate                     // ISR entered; about to read the commit gate
	cpGather                   // IPIs sent; waiting for every AP to park
	cpRecheck                  // APs parked; about to re-read the gate
	cpCommitBegin              // state transfer starting (torn window opens)
	cpCommitEnd                // publishing the new mode
	cpWaitDone                 // released; waiting for every AP to resume
)

// AP program locations.
const (
	apRunning uint8 = iota // executing user/kernel code; IPI may be pending
	apParked               // checked in at the rendezvous, spinning
	apResumed              // released and reloaded; CP has not finished yet
)

// Worker program locations (one VO operation = enter, write, exit).
const (
	wIdle  uint8 = iota // between operations
	wIn                 // entered: holds one VO reference
	wWrote              // performed its sensitive store; exit pending
)

// State is one reduced-machine configuration. All fields are bounded so
// the whole struct packs into a fixed-size hash key.
type State struct {
	Mode    uint8 // committed global mode
	Pending int8  // requested target mode; -1 none
	Target  uint8 // target APs reload at release (reset to old mode on abort)

	Requests  uint8 // environment switch requests not yet raised
	Refs      int8  // VO entry/exit refcount
	Deferrals int8  // deferrals of the current request

	TimerArmed bool // retry timer armed
	IPISent    bool // rendezvous IPIs posted, APs not yet released
	Released   bool // CP released the rendezvous
	Committing bool // between commit-begin and commit-end (torn window)
	Aborting   bool // release is an abort (recheck found the gate shut)

	CP      uint8          // CP program location
	AP      [MaxCPUs]uint8 // AP program locations (index 1..K-1)
	CPUMode [MaxCPUs]uint8 // per-CPU loaded control state

	W     [MaxWorkers]uint8 // worker program locations
	WMode [MaxWorkers]uint8 // mode each in-flight worker entered under
	WOps  [MaxWorkers]uint8 // operations each worker still has to run

	JArmed bool  // dirty journal armed (frozen frame table, native mode)
	JDirty uint8 // journaled slots, saturating at jCap+1 (overflow)

	LostWrite bool // a store landed where the attached VMM cannot see it
}

// Bug selects a seeded protocol regression for the checker to
// rediscover. The clean protocol (BugNone) must be violation-free.
type Bug uint8

const (
	// BugNone is the shipped protocol.
	BugNone Bug = iota
	// BugTOCTOU reverts the PR-3 fix: the CP skips the post-rendezvous
	// gate recheck, so an operation that entered the VO between the
	// first gate read and its CPU parking is committed over while it
	// still holds the refcount.
	BugTOCTOU
	// BugRendezvous makes the CP trust a stale ready count: it
	// proceeds past the rendezvous gather without waiting for every AP
	// to park, so the commit can race an AP still executing.
	BugRendezvous
)

func (b Bug) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugTOCTOU:
		return "toctou"
	case BugRendezvous:
		return "rendezvous"
	}
	return fmt.Sprintf("bug%d", uint8(b))
}

// ParseBug maps a CLI spelling to a seeded bug.
func ParseBug(s string) (Bug, error) {
	for b := BugNone; b <= BugRendezvous; b++ {
		if b.String() == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("mc: unknown seeded bug %q (want none, toctou or rendezvous)", s)
}

// Violation classifies an invariant breach; each maps to a clause of
// core.(*Mercury).CheckInvariants on the full system.
type Violation uint8

const (
	VioNone Violation = iota
	// VioCommitRefs: the commit ran with the VO refcount held — the
	// §5.1.1 gate ("engine quiescence" in CheckInvariants) violated.
	VioCommitRefs
	// VioCommitUnparked: the commit ran while an AP was not parked at
	// the rendezvous (§5.4).
	VioCommitUnparked
	// VioNegativeRefs: the refcount went negative.
	VioNegativeRefs
	// VioTornMode: a quiescent state where some CPU's loaded control
	// state disagrees with the committed mode (the per-CPU
	// GDTR/IDTR-vs-mode clause of CheckInvariants).
	VioTornMode
	// VioLostWrite: a sensitive store executed in a different mode
	// than its operation entered under — under the journal policy, a
	// direct write the attached VMM never sees.
	VioLostWrite
	// VioDeadlock: a non-terminal state with no enabled action — the
	// liveness half: a deferred switch that can neither commit nor
	// exhaust MaxDeferrals.
	VioDeadlock
)

func (v Violation) String() string {
	switch v {
	case VioNone:
		return "none"
	case VioCommitRefs:
		return "commit-with-refcount-held"
	case VioCommitUnparked:
		return "commit-with-ap-unparked"
	case VioNegativeRefs:
		return "negative-refcount"
	case VioTornMode:
		return "torn-mode"
	case VioLostWrite:
		return "lost-write"
	case VioDeadlock:
		return "deadlock"
	}
	return fmt.Sprintf("violation%d", uint8(v))
}

// Config shapes the reduced machine.
type Config struct {
	// CPUs is K (1..MaxCPUs); CPU 0 is the control processor.
	CPUs int
	// Workers is how many VO operations run concurrently (0..MaxWorkers),
	// pinned round-robin to the AP CPUs (to CPU 0 when K == 1, where
	// they only run while no ISR is in flight).
	Workers int
	// OpsPerWorker is how many enter/write/exit rounds each worker runs.
	OpsPerWorker int
	// Switches is how many mode-switch requests the environment raises,
	// alternating attach/detach from native.
	Switches int
	// MaxDeferrals is the retry budget (the production MaxDeferrals,
	// kept small to bound the state space).
	MaxDeferrals int
	// Journal models the TrackJournal arm/replay machinery.
	Journal bool
	// Bug is the seeded regression to plant (BugNone = shipped protocol).
	Bug Bug
}

// DefaultConfig is the committed CI bound: 2 CPUs, two 2-op workers,
// three switches (attach, detach — arming the journal — and a second
// attach that replays it), 2 deferrals.
func DefaultConfig() Config {
	return Config{CPUs: 2, Workers: 2, OpsPerWorker: 2, Switches: 3,
		MaxDeferrals: 2, Journal: true}
}

func (cfg *Config) validate() error {
	if cfg.CPUs < 1 || cfg.CPUs > MaxCPUs {
		return fmt.Errorf("mc: CPUs must be 1..%d, got %d", MaxCPUs, cfg.CPUs)
	}
	if cfg.Workers < 0 || cfg.Workers > MaxWorkers {
		return fmt.Errorf("mc: Workers must be 0..%d, got %d", MaxWorkers, cfg.Workers)
	}
	if cfg.OpsPerWorker < 0 || cfg.OpsPerWorker > 7 {
		return fmt.Errorf("mc: OpsPerWorker must be 0..7, got %d", cfg.OpsPerWorker)
	}
	if cfg.Switches < 0 || cfg.Switches > 15 {
		return fmt.Errorf("mc: Switches must be 0..15, got %d", cfg.Switches)
	}
	if cfg.MaxDeferrals < 1 || cfg.MaxDeferrals > 15 {
		return fmt.Errorf("mc: MaxDeferrals must be 1..15, got %d", cfg.MaxDeferrals)
	}
	return nil
}

// workerCPU is the static worker → CPU pinning.
func (cfg *Config) workerCPU(w int) int {
	if cfg.CPUs == 1 {
		return 0
	}
	return 1 + w%(cfg.CPUs-1)
}

// initState is the reduced machine's boot state: native mode, no switch
// in flight, all workers idle with their full op budget.
func initState(cfg Config) State {
	var s State
	s.Pending = -1
	s.Requests = uint8(cfg.Switches)
	for w := 0; w < cfg.Workers; w++ {
		s.WOps[w] = uint8(cfg.OpsPerWorker)
	}
	return s
}

// ActionKind is one atomic transition of the reduced machine.
type ActionKind uint8

const (
	// ActRaise: the environment raises the next switch request
	// (RequestSwitch posting the mode-switch vector).
	ActRaise ActionKind = iota
	// ActTimerFire: the retry timer expires and re-enters the ISR.
	ActTimerFire
	// ActGateCheck: the CP reads the commit gate; open → send the
	// rendezvous IPIs, shut → defer (or starve) via the retry path.
	ActGateCheck
	// ActGatherComplete: the CP observes every AP parked and leaves the
	// gather spin (with BugRendezvous, it leaves without looking).
	ActGatherComplete
	// ActGateRecheck: the CP re-reads the gate under the parked
	// rendezvous; shut → abort the attempt (skipped under BugTOCTOU).
	ActGateRecheck
	// ActCommitBegin: state transfer starts; journal replay happens
	// here on an attach.
	ActCommitBegin
	// ActCommitEnd: the new mode is published; journal armed on detach.
	ActCommitEnd
	// ActFinish: the CP confirms every AP resumed, then completes the
	// ISR — including the deferral/starvation accounting after an
	// aborted attempt.
	ActFinish
	// ActAPPark: an AP takes the rendezvous IPI and checks in.
	ActAPPark
	// ActAPResume: a released AP reloads its control state for Target.
	ActAPResume
	// ActEnter: a worker enters the VO (refcount++).
	ActEnter
	// ActWrite: a worker performs its sensitive store.
	ActWrite
	// ActExit: a worker exits the VO (refcount--).
	ActExit
)

func (k ActionKind) String() string {
	switch k {
	case ActRaise:
		return "raise-switch"
	case ActTimerFire:
		return "retry-fire"
	case ActGateCheck:
		return "gate-check"
	case ActGatherComplete:
		return "rendezvous-gather"
	case ActGateRecheck:
		return "gate-recheck"
	case ActCommitBegin:
		return "commit-begin"
	case ActCommitEnd:
		return "commit-end"
	case ActFinish:
		return "rendezvous-release"
	case ActAPPark:
		return "ap-park"
	case ActAPResume:
		return "ap-resume"
	case ActEnter:
		return "vo-enter"
	case ActWrite:
		return "vo-write"
	case ActExit:
		return "vo-exit"
	}
	return fmt.Sprintf("action%d", uint8(k))
}

// Action is one enabled transition: a kind plus the acting AP index
// (ActAPPark/ActAPResume) or worker index (ActEnter/ActWrite/ActExit).
type Action struct {
	Kind ActionKind
	Who  uint8
}

func (a Action) String() string {
	switch a.Kind {
	case ActAPPark, ActAPResume:
		return fmt.Sprintf("cpu%d/%s", a.Who, a.Kind)
	case ActEnter, ActWrite, ActExit:
		return fmt.Sprintf("w%d/%s", a.Who, a.Kind)
	default:
		return a.Kind.String()
	}
}

// allParked reports whether every AP has checked in.
func (s *State) allParked(cfg *Config) bool {
	for i := 1; i < cfg.CPUs; i++ {
		if s.AP[i] != apParked {
			return false
		}
	}
	return true
}

// allResumed reports whether every AP has left the rendezvous.
func (s *State) allResumed(cfg *Config) bool {
	for i := 1; i < cfg.CPUs; i++ {
		if s.AP[i] != apResumed {
			return false
		}
	}
	return true
}

// workerFree reports whether worker w's CPU can execute user code: its
// AP is not parked (a parked CPU spins with interrupts off), or — for a
// worker pinned to the CP on a uniprocessor — no ISR is in flight.
func (s *State) workerFree(cfg *Config, w int) bool {
	j := cfg.workerCPU(w)
	if j == 0 {
		return s.CP == cpIdle
	}
	return s.AP[j] != apParked
}

// enabled appends every action runnable from s to dst (reused across
// calls to keep the checker allocation-light) in a fixed deterministic
// order: environment, CP, APs, workers.
func enabled(dst []Action, s *State, cfg *Config) []Action {
	// Environment.
	if s.Pending == -1 && s.CP == cpIdle && !s.TimerArmed && s.Requests > 0 {
		dst = append(dst, Action{Kind: ActRaise})
	}
	if s.TimerArmed && s.CP == cpIdle {
		dst = append(dst, Action{Kind: ActTimerFire})
	}
	// Control processor.
	switch s.CP {
	case cpGate:
		dst = append(dst, Action{Kind: ActGateCheck})
	case cpGather:
		if s.allParked(cfg) || cfg.Bug == BugRendezvous {
			dst = append(dst, Action{Kind: ActGatherComplete})
		}
	case cpRecheck:
		dst = append(dst, Action{Kind: ActGateRecheck})
	case cpCommitBegin:
		dst = append(dst, Action{Kind: ActCommitBegin})
	case cpCommitEnd:
		dst = append(dst, Action{Kind: ActCommitEnd})
	case cpWaitDone:
		if s.allResumed(cfg) {
			dst = append(dst, Action{Kind: ActFinish})
		}
	}
	// Application processors.
	for i := 1; i < cfg.CPUs; i++ {
		switch {
		case s.IPISent && s.AP[i] == apRunning:
			dst = append(dst, Action{Kind: ActAPPark, Who: uint8(i)})
		case s.Released && s.AP[i] == apParked:
			dst = append(dst, Action{Kind: ActAPResume, Who: uint8(i)})
		}
	}
	// Workers.
	for w := 0; w < cfg.Workers; w++ {
		if !s.workerFree(cfg, w) {
			continue
		}
		switch s.W[w] {
		case wIdle:
			if s.WOps[w] > 0 {
				dst = append(dst, Action{Kind: ActEnter, Who: uint8(w)})
			}
		case wIn:
			dst = append(dst, Action{Kind: ActWrite, Who: uint8(w)})
		case wWrote:
			dst = append(dst, Action{Kind: ActExit, Who: uint8(w)})
		}
	}
	return dst
}

// deferOrStarve is the retry path shared by the shut first gate and the
// post-rendezvous abort — the same accounting deferSwitch performs,
// decided by the production core.DeferVerdict.
func deferOrStarve(s *State, cfg *Config) {
	s.Deferrals++
	if core.DeferVerdict(int32(s.Deferrals), int32(cfg.MaxDeferrals)) {
		s.Pending = -1
		s.Deferrals = 0
		return
	}
	s.TimerArmed = true
}

// apply executes a on s and returns the successor state. It must only
// be called with an action reported by enabled for the same state.
func apply(s State, a Action, cfg *Config) State {
	switch a.Kind {
	case ActRaise:
		s.Pending = int8(modeVirtual)
		if s.Mode == modeVirtual {
			s.Pending = int8(modeNative)
		}
		s.Requests--
		s.Deferrals = 0
		s.CP = cpGate

	case ActTimerFire:
		s.TimerArmed = false
		s.CP = cpGate

	case ActGateCheck:
		s.Target = uint8(s.Pending)
		if !core.CommitGateOpen(int64(s.Refs)) {
			s.CP = cpIdle
			deferOrStarve(&s, cfg)
			break
		}
		if cfg.CPUs == 1 {
			// Uniprocessor: the rendezvous degenerates; the recheck
			// still runs (production calls it on the no-op release).
			s.CP = cpRecheck
			break
		}
		s.IPISent = true
		s.CP = cpGather

	case ActGatherComplete:
		if cfg.Bug == BugTOCTOU {
			// PR-3 revert: commit straight off the stale first read.
			s.CP = cpCommitBegin
			break
		}
		s.CP = cpRecheck

	case ActGateRecheck:
		if core.CommitGateOpen(int64(s.Refs)) {
			s.CP = cpCommitBegin
			break
		}
		// Abort: APs reload the old mode, then the retry path runs.
		s.Target = s.Mode
		s.Released = true
		s.Aborting = true
		s.CP = cpWaitDone

	case ActCommitBegin:
		s.Committing = true
		if s.Target == modeVirtual && cfg.Journal && s.JArmed {
			// Journal replay (or the overflow fallback to a full
			// recompute — same resulting accounting).
			s.JDirty = 0
			s.JArmed = false
		}
		s.CP = cpCommitEnd

	case ActCommitEnd:
		s.Mode = s.Target
		s.CPUMode[0] = s.Target
		if s.Target == modeNative && cfg.Journal {
			s.JArmed = true
		}
		s.Committing = false
		s.Pending = -1
		s.Deferrals = 0
		s.Released = true
		s.CP = cpWaitDone

	case ActFinish:
		for i := 1; i < cfg.CPUs; i++ {
			s.AP[i] = apRunning
		}
		s.IPISent = false
		s.Released = false
		s.CP = cpIdle
		if s.Aborting {
			s.Aborting = false
			deferOrStarve(&s, cfg)
		}

	case ActAPPark:
		s.AP[a.Who] = apParked

	case ActAPResume:
		s.AP[a.Who] = apResumed
		s.CPUMode[a.Who] = s.Target

	case ActEnter:
		s.Refs++
		s.W[a.Who] = wIn
		s.WMode[a.Who] = s.Mode

	case ActWrite:
		if s.Mode != s.WMode[a.Who] {
			// The operation entered under one mode and its store lands
			// under the other: under the journal policy this is a
			// direct write the attached VMM never sees.
			s.LostWrite = true
		}
		if s.Mode == modeNative && s.JArmed && s.JDirty <= jCap {
			s.JDirty++
		}
		s.W[a.Who] = wWrote

	case ActExit:
		s.Refs--
		s.WOps[a.Who]--
		s.W[a.Who] = wIdle
	}
	return s
}

// invariants checks s against the protocol's safety properties — the
// reduced-machine reading of core.(*Mercury).CheckInvariants.
func invariants(s *State, cfg *Config) Violation {
	if s.Refs < 0 {
		return VioNegativeRefs
	}
	if s.Committing {
		if !core.CommitGateOpen(int64(s.Refs)) {
			return VioCommitRefs
		}
		if !s.allParked(cfg) {
			return VioCommitUnparked
		}
	}
	if s.LostWrite {
		return VioLostWrite
	}
	// Quiescent coherence: with no ISR in flight and every AP running,
	// each CPU's loaded control state must match the committed mode.
	if s.CP == cpIdle && !s.Committing {
		quiescent := true
		for i := 1; i < cfg.CPUs; i++ {
			if s.AP[i] != apRunning {
				quiescent = false
				break
			}
		}
		if quiescent {
			for i := 0; i < cfg.CPUs; i++ {
				if s.CPUMode[i] != s.Mode {
					return VioTornMode
				}
			}
		}
	}
	return VioNone
}

// terminal reports whether s is a legitimate end state: every request
// resolved, no timer pending, all workers drained, machine quiescent.
// A stuck state that is not terminal is a liveness violation.
func terminal(s *State, cfg *Config) bool {
	if s.CP != cpIdle || s.Pending != -1 || s.TimerArmed || s.Requests != 0 {
		return false
	}
	for i := 1; i < cfg.CPUs; i++ {
		if s.AP[i] != apRunning {
			return false
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		if s.W[w] != wIdle || s.WOps[w] != 0 {
			return false
		}
	}
	return true
}

// keySize is the encoded-state width: 12 scalar/flag bytes plus the
// four per-CPU and three per-worker arrays.
const keySize = 12 + 2*MaxCPUs + 3*MaxWorkers

// encode packs s into a fixed-size comparable key for the visited set.
func encode(s *State) [keySize]byte {
	var k [keySize]byte
	k[0] = s.Mode
	k[1] = byte(s.Pending + 1)
	k[2] = s.Target
	k[3] = s.Requests
	k[4] = byte(s.Refs + MaxWorkers) // refs ∈ [-MaxWorkers, MaxWorkers]
	k[5] = byte(s.Deferrals)
	var flags byte
	if s.TimerArmed {
		flags |= 1 << 0
	}
	if s.IPISent {
		flags |= 1 << 1
	}
	if s.Released {
		flags |= 1 << 2
	}
	if s.Committing {
		flags |= 1 << 3
	}
	if s.Aborting {
		flags |= 1 << 4
	}
	if s.JArmed {
		flags |= 1 << 5
	}
	if s.LostWrite {
		flags |= 1 << 6
	}
	k[6] = flags
	k[7] = s.CP
	k[8] = s.JDirty
	// k[9..11] reserved (zero) to keep the layout byte-aligned.
	o := 12
	for i := 0; i < MaxCPUs; i++ {
		k[o+i] = s.AP[i]
		k[o+MaxCPUs+i] = s.CPUMode[i]
	}
	o += 2 * MaxCPUs
	for w := 0; w < MaxWorkers; w++ {
		k[o+w] = s.W[w]
		k[o+MaxWorkers+w] = s.WMode[w]
		k[o+2*MaxWorkers+w] = s.WOps[w]
	}
	return k
}
