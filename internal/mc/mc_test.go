package mc

import "testing"

// The seeded-regression gates: the clean protocol must explore to
// completion with zero violations, and both planted bugs — the PR-3
// TOCTOU commit-gate revert and the rendezvous no-wait — must be
// rediscovered mechanically with minimal counterexamples.

func bugged(b Bug) Config {
	cfg := DefaultConfig()
	cfg.Bug = b
	return cfg
}

func TestCleanProtocolRaceFree(t *testing.T) {
	res, err := Run(DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != VioNone {
		t.Fatalf("clean protocol violated %s:\n%s", res.Violation,
			FormatTrace(res.Config, res.Trace, res.Violation))
	}
	if !res.Complete {
		t.Fatalf("exploration did not close the state graph (bound %d)", res.BoundUsed)
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small state space: %d states", res.States)
	}
}

func TestCleanProtocolVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"uniprocessor", Config{CPUs: 1, Workers: 2, OpsPerWorker: 2,
			Switches: 3, MaxDeferrals: 2, Journal: true}},
		{"no-journal", Config{CPUs: 2, Workers: 2, OpsPerWorker: 2,
			Switches: 3, MaxDeferrals: 2}},
		{"no-workers", Config{CPUs: 3, Workers: 0, Switches: 4,
			MaxDeferrals: 2, Journal: true}},
		{"three-cpu", Config{CPUs: 3, Workers: 2, OpsPerWorker: 1,
			Switches: 2, MaxDeferrals: 2, Journal: true}},
		{"tight-deferrals", Config{CPUs: 2, Workers: 2, OpsPerWorker: 2,
			Switches: 3, MaxDeferrals: 1, Journal: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != VioNone {
				t.Fatalf("violated %s:\n%s", res.Violation,
					FormatTrace(res.Config, res.Trace, res.Violation))
			}
			if !res.Complete {
				t.Fatal("state graph not closed")
			}
		})
	}
}

func TestSeededTOCTOUFound(t *testing.T) {
	res, err := Run(bugged(BugTOCTOU), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != VioCommitRefs {
		t.Fatalf("TOCTOU revert: got %s, want %s", res.Violation, VioCommitRefs)
	}
	// The minimal interleaving: raise, gate-check (open), a worker
	// enters on the AP, the AP parks, the stale gather completes and —
	// with the recheck skipped — commit begins over the held refcount.
	if res.TraceLen != 6 {
		t.Fatalf("counterexample not minimal: %d steps, want 6\n%s",
			res.TraceLen, FormatTrace(res.Config, res.Trace, res.Violation))
	}
	if vio, err := Replay(res.Config, res.Trace); err != nil || vio != VioCommitRefs {
		t.Fatalf("replay: vio=%s err=%v", vio, err)
	}
}

func TestSeededRendezvousFound(t *testing.T) {
	res, err := Run(bugged(BugRendezvous), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != VioCommitUnparked {
		t.Fatalf("rendezvous no-wait: got %s, want %s",
			res.Violation, VioCommitUnparked)
	}
	// Minimal: raise, gate-check, the buggy gather completes with the
	// AP still running, recheck passes (refs are zero), commit begins
	// with an unparked AP.
	if res.TraceLen != 5 {
		t.Fatalf("counterexample not minimal: %d steps, want 5\n%s",
			res.TraceLen, FormatTrace(res.Config, res.Trace, res.Violation))
	}
	if vio, err := Replay(res.Config, res.Trace); err != nil || vio != VioCommitUnparked {
		t.Fatalf("replay: vio=%s err=%v", vio, err)
	}
}

// TestDPORPreservesVerdicts: sleep-set pruning must cut work without
// changing any verdict — clean stays clean, both bugs stay found.
func TestDPORPreservesVerdicts(t *testing.T) {
	clean, err := Run(DefaultConfig(), Options{DPOR: true})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violation != VioNone || !clean.Complete {
		t.Fatalf("DPOR clean run: vio=%s complete=%v", clean.Violation, clean.Complete)
	}
	if clean.SleepSkips == 0 {
		t.Fatal("DPOR pruned nothing on the default config")
	}
	full, err := Run(DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Transitions >= full.Transitions {
		t.Fatalf("DPOR did not reduce transitions: %d vs %d",
			clean.Transitions, full.Transitions)
	}
	for b, want := range map[Bug]Violation{
		BugTOCTOU:     VioCommitRefs,
		BugRendezvous: VioCommitUnparked,
	} {
		res, err := Run(bugged(b), Options{DPOR: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != want {
			t.Fatalf("DPOR on %s: got %s, want %s", b, res.Violation, want)
		}
	}
}

// TestDeterministic: identical configurations must produce identical
// exploration statistics — the property BENCH_mc.json's exact diff
// rests on.
func TestDeterministic(t *testing.T) {
	a, err := Run(DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Transitions != b.Transitions ||
		a.BoundUsed != b.BoundUsed {
		t.Fatalf("non-deterministic exploration: (%d,%d,%d) vs (%d,%d,%d)",
			a.States, a.Transitions, a.BoundUsed,
			b.States, b.Transitions, b.BoundUsed)
	}
	x, err := Run(bugged(BugTOCTOU), Options{})
	if err != nil {
		t.Fatal(err)
	}
	y, err := Run(bugged(BugTOCTOU), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Trace) != len(y.Trace) {
		t.Fatalf("non-deterministic counterexample: %d vs %d steps",
			len(x.Trace), len(y.Trace))
	}
	for i := range x.Trace {
		if x.Trace[i] != y.Trace[i] {
			t.Fatalf("traces diverge at step %d: %s vs %s",
				i, x.Trace[i], y.Trace[i])
		}
	}
}

// TestBoundedVerdict: a depth cap smaller than the bug's minimal trace
// must report no violation but also not claim completeness.
func TestBoundedVerdict(t *testing.T) {
	res, err := Run(bugged(BugTOCTOU), Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != VioNone {
		t.Fatalf("found %s below the minimal trace length", res.Violation)
	}
	if res.Complete {
		t.Fatal("claimed completeness at depth 4")
	}
}

// TestInvariantsSpotChecks pins the invariant checker against
// hand-built states, independent of the exploration.
func TestInvariantsSpotChecks(t *testing.T) {
	cfg := DefaultConfig()
	s := initState(cfg)
	if v := invariants(&s, &cfg); v != VioNone {
		t.Fatalf("boot state: %s", v)
	}
	s.Refs = -1
	if v := invariants(&s, &cfg); v != VioNegativeRefs {
		t.Fatalf("refs=-1: got %s", v)
	}
	s = initState(cfg)
	s.Committing = true
	s.Refs = 1
	s.AP[1] = apParked
	if v := invariants(&s, &cfg); v != VioCommitRefs {
		t.Fatalf("commit with refs: got %s", v)
	}
	s.Refs = 0
	s.AP[1] = apRunning
	if v := invariants(&s, &cfg); v != VioCommitUnparked {
		t.Fatalf("commit with unparked AP: got %s", v)
	}
	s = initState(cfg)
	s.Mode = modeVirtual
	if v := invariants(&s, &cfg); v != VioTornMode {
		t.Fatalf("quiescent mode mismatch: got %s", v)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{CPUs: 0, MaxDeferrals: 1},
		{CPUs: MaxCPUs + 1, MaxDeferrals: 1},
		{CPUs: 2, Workers: MaxWorkers + 1, MaxDeferrals: 1},
		{CPUs: 2, OpsPerWorker: 8, MaxDeferrals: 1},
		{CPUs: 2, Switches: 16, MaxDeferrals: 1},
		{CPUs: 2, MaxDeferrals: 0},
	} {
		if _, err := Run(bad, Options{}); err == nil {
			t.Fatalf("accepted invalid config %+v", bad)
		}
	}
	if _, err := ParseBug("toctou"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBug("nonesuch"); err == nil {
		t.Fatal("accepted unknown bug name")
	}
}
