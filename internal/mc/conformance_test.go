package mc

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

// Conformance: the production engine's observed step stream, projected
// into reduced-machine actions, must be a valid execution of the model
// (every projected action enabled in its predecessor state, no
// violation). This is the link that makes a model-checker verdict a
// statement about switch.go rather than about a transcription of it:
// the step vocabulary is shared (core.SwitchStep), the decision
// functions are shared (core.CommitGateOpen, core.DeferVerdict), and
// this test pins the *sequencing* to agree too.

// stepRec is one observed production protocol step.
type stepRec struct {
	cpu  int
	step core.SwitchStep
}

// recorder collects the production step stream; APs emit from their own
// goroutines, hence the mutex.
type recorder struct {
	mu    sync.Mutex
	steps []stepRec
}

func (r *recorder) OnStep(cpu int, step core.SwitchStep, _ core.Mode) {
	r.mu.Lock()
	r.steps = append(r.steps, stepRec{cpu, step})
	r.mu.Unlock()
}

func (r *recorder) snapshot() []stepRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]stepRec(nil), r.steps...)
}

// translate projects the production step stream into model actions.
// The two sides draw their atomicity lines slightly differently, and
// the projection encodes exactly those differences:
//   - the model's raise-switch has no production step (SwitchSync posts
//     the interrupt), so one is inserted before a gate-check that was
//     not reached via the retry timer;
//   - the production gather step marks the *start* of waiting, the
//     model's rendezvous-gather its completion, so the projection holds
//     it until the recheck proves every AP parked;
//   - the production commit is one step, the model splits the torn
//     window into commit-begin/commit-end;
//   - the production release step precedes the AP resumes it unblocks,
//     the model's rendezvous-release (ActFinish) requires them, so the
//     projection holds it until the last resume;
//   - defer-arm and starve are folded into the model's gate-check
//     (deferOrStarve runs inside it), so they project to nothing.
func translate(t *testing.T, steps []stepRec, cpus int) []Action {
	t.Helper()
	var out []Action
	gatherPending := false
	finishPending := false
	resumes := 0
	timerFired := false
	for _, s := range steps {
		switch s.step {
		case core.StepGateCheck:
			if !timerFired {
				out = append(out, Action{Kind: ActRaise})
			}
			timerFired = false
			out = append(out, Action{Kind: ActGateCheck})
		case core.StepRendezvousGather:
			// Uniprocessor: the production gather is a no-op and the
			// model goes straight to the recheck.
			gatherPending = cpus > 1
		case core.StepAPPark:
			out = append(out, Action{Kind: ActAPPark, Who: uint8(s.cpu)})
		case core.StepGateRecheck:
			if gatherPending {
				out = append(out, Action{Kind: ActGatherComplete})
				gatherPending = false
			}
			out = append(out, Action{Kind: ActGateRecheck})
		case core.StepCommit:
			out = append(out,
				Action{Kind: ActCommitBegin}, Action{Kind: ActCommitEnd})
		case core.StepRendezvousRelease:
			finishPending = true
			resumes = 0
			if cpus == 1 {
				out = append(out, Action{Kind: ActFinish})
				finishPending = false
			}
		case core.StepAPResume:
			out = append(out, Action{Kind: ActAPResume, Who: uint8(s.cpu)})
			resumes++
			if finishPending && resumes == cpus-1 {
				out = append(out, Action{Kind: ActFinish})
				finishPending = false
			}
		case core.StepRetryFire:
			timerFired = true
			out = append(out, Action{Kind: ActTimerFire})
		case core.StepDeferArm, core.StepStarve:
			// Folded into the model's gate-check.
		default:
			t.Fatalf("unexpected production step %v", s.step)
		}
	}
	if gatherPending || finishPending {
		t.Fatal("truncated step stream: rendezvous left open")
	}
	return out
}

// cpProjection filters the stream down to the control processor's steps.
func cpProjection(steps []stepRec) []core.SwitchStep {
	var out []core.SwitchStep
	for _, s := range steps {
		if s.cpu == 0 {
			out = append(out, s.step)
		}
	}
	return out
}

// TestConformanceCleanSwitchSMP runs a real attach/detach cycle on a
// two-CPU production system and replays the observed interleaving
// through the reduced machine.
func TestConformanceCleanSwitchSMP(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 2})
	sys, err := core.New(core.Config{Machine: m, Policy: core.TrackRecompute})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	sys.SetStepObserver(rec)

	k := sys.K
	boot := m.BootCPU()
	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		if err := sys.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
			panic(err)
		}
		if err := sys.SwitchSync(p.CPU(), core.ModeNative); err != nil {
			panic(err)
		}
	})
	done := make(chan struct{})
	go func() { k.Run(m.CPUs[1]); close(done) }()
	k.Run(boot)
	<-done

	steps := rec.snapshot()
	// The CP's projection is the canonical protocol order, twice.
	wantCP := []core.SwitchStep{
		core.StepGateCheck, core.StepRendezvousGather, core.StepGateRecheck,
		core.StepCommit, core.StepRendezvousRelease,
		core.StepGateCheck, core.StepRendezvousGather, core.StepGateRecheck,
		core.StepCommit, core.StepRendezvousRelease,
	}
	gotCP := cpProjection(steps)
	if len(gotCP) != len(wantCP) {
		t.Fatalf("CP took %d steps, want %d: %v", len(gotCP), len(wantCP), gotCP)
	}
	for i := range wantCP {
		if gotCP[i] != wantCP[i] {
			t.Fatalf("CP step %d = %v, want %v", i, gotCP[i], wantCP[i])
		}
	}

	trace := translate(t, steps, 2)
	cfg := Config{CPUs: 2, Workers: 0, Switches: 2, MaxDeferrals: 2, Journal: true}
	vio, err := Replay(cfg, trace)
	if err != nil {
		t.Fatalf("production interleaving rejected by the model: %v", err)
	}
	if vio != VioNone {
		t.Fatalf("production interleaving violates the model: %v", vio)
	}
}

// TestConformanceStarvationUniprocessor holds the VO refcount through a
// switch attempt (the chaos vo-stuck-op fault) and replays the
// defer/retry/starve path through the model, with the held reference
// projected as a worker that entered and never exited.
func TestConformanceStarvationUniprocessor(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: 1})
	sys, err := core.New(core.Config{
		Machine: m, Policy: core.TrackRecompute, MaxDeferrals: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	sys.SetStepObserver(rec)
	c := m.BootCPU()

	h, ok := sys.K.VO().(interface {
		Hold()
		Unhold()
	})
	if !ok {
		t.Fatalf("VO %q has no refcount hold", sys.K.VO().Name())
	}
	h.Hold()
	serr := sys.SwitchSync(c, core.ModePartialVirtual)
	h.Unhold()
	if serr == nil || !strings.Contains(serr.Error(), "starved") {
		t.Fatalf("switch under a held refcount: %v", serr)
	}

	steps := rec.snapshot()
	wantCP := []core.SwitchStep{
		core.StepGateCheck, core.StepDeferArm, core.StepRetryFire,
		core.StepGateCheck, core.StepStarve,
	}
	gotCP := cpProjection(steps)
	if len(gotCP) != len(wantCP) {
		t.Fatalf("CP took %d steps, want %d: %v", len(gotCP), len(wantCP), gotCP)
	}
	for i := range wantCP {
		if gotCP[i] != wantCP[i] {
			t.Fatalf("CP step %d = %v, want %v", i, gotCP[i], wantCP[i])
		}
	}

	// The held reference is a modeled worker that entered before the
	// request was raised and never exited.
	trace := append([]Action{{Kind: ActEnter, Who: 0}}, translate(t, steps, 1)...)
	cfg := Config{CPUs: 1, Workers: 1, OpsPerWorker: 1, Switches: 1,
		MaxDeferrals: 2, Journal: true}
	vio, err := Replay(cfg, trace)
	if err != nil {
		t.Fatalf("production interleaving rejected by the model: %v", err)
	}
	if vio != VioNone {
		t.Fatalf("production interleaving violates the model: %v", vio)
	}
}
