package mc

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceRoundTrip: a counterexample rendered into the flight
// recorder must decode back to the same action sequence and replay to
// the same violation — the contract `mercuryctl mc -trace` depends on.
func TestTraceRoundTrip(t *testing.T) {
	for b, want := range map[Bug]Violation{
		BugTOCTOU:     VioCommitRefs,
		BugRendezvous: VioCommitUnparked,
	} {
		cfg := DefaultConfig()
		cfg.Bug = b
		res, err := Run(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		log := obs.NewEventLog(64)
		RecordTrace(log, res)
		snap := log.Snapshot()
		if len(snap) != len(res.Trace)+1 {
			t.Fatalf("%s: %d records for a %d-step trace", b, len(snap), len(res.Trace))
		}
		trace, vio, err := DecodeTrace(snap)
		if err != nil {
			t.Fatal(err)
		}
		if vio != want {
			t.Fatalf("%s: decoded violation %s, want %s", b, vio, want)
		}
		if len(trace) != len(res.Trace) {
			t.Fatalf("%s: decoded %d steps, want %d", b, len(trace), len(res.Trace))
		}
		for i := range trace {
			if trace[i] != res.Trace[i] {
				t.Fatalf("%s: step %d decoded as %s, want %s",
					b, i, trace[i], res.Trace[i])
			}
		}
		got, err := Replay(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: replay produced %s, want %s", b, got, want)
		}
	}
}

// TestReplayRejectsCorruptedTrace: splicing an impossible step into a
// trace must be detected, not silently applied.
func TestReplayRejectsCorruptedTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bug = BugTOCTOU
	res, err := Run(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]Action(nil), res.Trace...)
	bad[0] = Action{Kind: ActCommitEnd} // CP is idle at boot
	if _, err := Replay(cfg, bad); err == nil {
		t.Fatal("replay accepted a corrupted trace")
	}
	// A clean-config replay of the buggy trace must also fail: the
	// gather step is not enabled without the seeded bug.
	if _, err := Replay(DefaultConfig(), res.Trace); err == nil {
		t.Fatal("replay reproduced a bug-only trace on the clean protocol")
	}
}

// TestReplayCleanPrefix: a prefix of a counterexample that stops short
// of the violation replays clean.
func TestReplayCleanPrefix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bug = BugRendezvous
	res, err := Run(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vio, err := Replay(cfg, res.Trace[:len(res.Trace)-1])
	if err != nil {
		t.Fatal(err)
	}
	if vio != VioNone {
		t.Fatalf("prefix already violates: %s", vio)
	}
}

func TestFormatTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bug = BugTOCTOU
	res, err := Run(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTrace(cfg, res.Trace, res.Violation)
	for _, want := range []string{"boot:", "gate-check", "ap-park",
		"rendezvous-gather", "commit-begin",
		"violation: commit-with-refcount-held"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, text)
		}
	}
}

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeTrace([]obs.Event{
		{Kind: obs.EvMCStep, A: 200},
	}); err == nil {
		t.Fatal("decoded an out-of-range action kind")
	}
	if _, _, err := DecodeTrace([]obs.Event{
		{Kind: obs.EvMCStep, A: uint64(ActRaise)},
	}); err == nil {
		t.Fatal("decoded a snapshot with no violation record")
	}
}
