package mc

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// A counterexample is only convincing if it can be replayed: Replay
// re-executes the action sequence against the same reduced machine,
// verifying at each step that the action was actually enabled, and
// returns the violation the final state exhibits. RecordTrace renders
// the same sequence into flight-recorder records so `mercuryctl mc
// -trace` shows the failing interleaving with the same tooling that
// inspects production event logs.

// Replay re-runs trace from cfg's boot state. It errors if any step is
// not enabled in its predecessor state (a corrupted or mismatched
// trace), and otherwise returns the first violation encountered —
// VioNone means the trace does not reproduce a failure.
func Replay(cfg Config, trace []Action) (Violation, error) {
	if err := cfg.validate(); err != nil {
		return VioNone, err
	}
	s := initState(cfg)
	var buf []Action
	for i, a := range trace {
		buf = enabled(buf[:0], &s, &cfg)
		ok := false
		for _, e := range buf {
			if e == a {
				ok = true
				break
			}
		}
		if !ok {
			return VioNone, fmt.Errorf(
				"mc: replay step %d: %s not enabled (CP=%d refs=%d mode=%d)",
				i, a, s.CP, s.Refs, s.Mode)
		}
		s = apply(s, a, &cfg)
		if v := invariants(&s, &cfg); v != VioNone {
			if i != len(trace)-1 {
				return v, fmt.Errorf(
					"mc: replay violated %s at step %d of %d (trace not minimal?)",
					v, i+1, len(trace))
			}
			return v, nil
		}
	}
	// No safety breach along the way: the trace may end in a deadlock.
	buf = enabled(buf[:0], &s, &cfg)
	if len(buf) == 0 && !terminal(&s, &cfg) {
		return VioDeadlock, nil
	}
	return VioNone, nil
}

// traceNode attributes an action to a flight-recorder node: the acting
// CPU for CP/AP steps, 100+worker for VO operations (their CPU pinning
// is in the B payload via workerCPU).
func traceNode(a Action) int32 {
	switch a.Kind {
	case ActAPPark, ActAPResume:
		return int32(a.Who)
	case ActEnter, ActWrite, ActExit:
		return 100 + int32(a.Who)
	default:
		return 0 // control processor / environment
	}
}

// RecordTrace renders a counterexample into log as EvMCStep records
// (TS = step index, A = ActionKind, B = actor index) terminated by one
// EvMCViolation record carrying the violation code.
func RecordTrace(log *obs.EventLog, res *Result) {
	for i, a := range res.Trace {
		log.Record(obs.EvMCStep, traceNode(a), uint64(i),
			uint64(a.Kind), uint64(a.Who))
	}
	log.Record(obs.EvMCViolation, -1, uint64(len(res.Trace)),
		uint64(res.Violation), 0)
}

// DecodeStep maps an EvMCStep record back to its action.
func DecodeStep(e obs.Event) (Action, error) {
	if e.Kind != obs.EvMCStep {
		return Action{}, fmt.Errorf("mc: not an mc-step record: %s", e.Kind)
	}
	if e.A > uint64(ActExit) {
		return Action{}, fmt.Errorf("mc: bad action kind %d in record", e.A)
	}
	return Action{Kind: ActionKind(e.A), Who: uint8(e.B)}, nil
}

// DecodeTrace rebuilds an action trace from a flight-recorder snapshot,
// returning the actions and the recorded violation.
func DecodeTrace(events []obs.Event) ([]Action, Violation, error) {
	var trace []Action
	vio := VioNone
	for _, e := range events {
		switch e.Kind {
		case obs.EvMCStep:
			a, err := DecodeStep(e)
			if err != nil {
				return nil, VioNone, err
			}
			trace = append(trace, a)
		case obs.EvMCViolation:
			vio = Violation(e.A)
		}
	}
	if vio == VioNone {
		return nil, VioNone, fmt.Errorf("mc: no mc-violation record in snapshot")
	}
	return trace, vio, nil
}

// FormatTrace renders a counterexample for humans: one line per step
// with the machine state after it, so the interleaving that breaks the
// invariant can be read top to bottom.
func FormatTrace(cfg Config, trace []Action, vio Violation) string {
	var b strings.Builder
	s := initState(cfg)
	fmt.Fprintf(&b, "    boot: %s\n", stateLine(&s, &cfg))
	for i, a := range trace {
		s = apply(s, a, &cfg)
		fmt.Fprintf(&b, "%4d  %-22s %s\n", i+1, a.String(), stateLine(&s, &cfg))
	}
	fmt.Fprintf(&b, "violation: %s\n", vio)
	return b.String()
}

// stateLine is the one-line state summary used by FormatTrace.
func stateLine(s *State, cfg *Config) string {
	mode := "native"
	if s.Mode == modeVirtual {
		mode = "virtual"
	}
	var ap strings.Builder
	for i := 1; i < cfg.CPUs; i++ {
		switch s.AP[i] {
		case apParked:
			ap.WriteByte('P')
		case apResumed:
			ap.WriteByte('R')
		default:
			ap.WriteByte('.')
		}
	}
	var w strings.Builder
	for i := 0; i < cfg.Workers; i++ {
		switch s.W[i] {
		case wIn:
			w.WriteByte('i')
		case wWrote:
			w.WriteByte('w')
		default:
			w.WriteByte('.')
		}
	}
	flags := ""
	if s.Committing {
		flags += " COMMITTING"
	}
	if s.TimerArmed {
		flags += " timer"
	}
	if s.JArmed {
		flags += " journal"
	}
	return fmt.Sprintf("mode=%-7s refs=%d cp=%d ap=[%s] w=[%s]%s",
		mode, s.Refs, s.CP, ap.String(), w.String(), flags)
}
