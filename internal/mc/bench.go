package mc

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The committed checker evidence: BENCH_mc.json records, for a fixed
// row set, how many states and transitions each exploration visits and
// what verdict it reaches. Everything except wall-clock time is
// deterministic for a fixed configuration, so CI diffs the counts
// exactly — a protocol change that shrinks or grows the reachable
// state space, flips a verdict, or lengthens a minimal counterexample
// shows up as a baseline breach, not a silent drift.

// BenchRow is one exploration's committed evidence.
type BenchRow struct {
	Name        string  `json:"name"`
	CPUs        int     `json:"cpus"`
	Workers     int     `json:"workers"`
	Bug         string  `json:"bug"`
	DPOR        bool    `json:"dpor"`
	Violation   string  `json:"violation"`
	Complete    bool    `json:"complete"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	SleepSkips  int     `json:"sleep_skips"`
	BoundUsed   int     `json:"bound_used"`
	TraceLen    int     `json:"trace_len"`
	ElapsedMS   float64 `json:"elapsed_ms"` // informational, never diffed
}

// Baseline is the committed BENCH_mc.json shape.
type Baseline struct {
	Schema string     `json:"schema"`
	Rows   []BenchRow `json:"rows"`
}

const baselineSchema = "mc-baseline/v1"

// wideConfig is the larger clean row: three CPUs, three workers.
func wideConfig() Config {
	return Config{CPUs: 3, Workers: 3, OpsPerWorker: 2, Switches: 3,
		MaxDeferrals: 2, Journal: true}
}

// benchRows is the fixed row set. Clean explorations must be complete
// and violation-free; the seeded rows must rediscover their bug — the
// suite itself enforces both, so `benchtab -exp mc` fails loudly even
// without a baseline to diff.
func benchRows() []struct {
	name   string
	cfg    Config
	dpor   bool
	expect Violation
} {
	uni := Config{CPUs: 1, Workers: 2, OpsPerWorker: 2, Switches: 3,
		MaxDeferrals: 2, Journal: true}
	return []struct {
		name   string
		cfg    Config
		dpor   bool
		expect Violation
	}{
		{"clean-default", DefaultConfig(), false, VioNone},
		{"clean-default-dpor", DefaultConfig(), true, VioNone},
		{"clean-uniprocessor", uni, false, VioNone},
		{"clean-wide", wideConfig(), false, VioNone},
		{"clean-wide-dpor", wideConfig(), true, VioNone},
		{"seeded-toctou", bugConfig(BugTOCTOU), false, VioCommitRefs},
		{"seeded-toctou-dpor", bugConfig(BugTOCTOU), true, VioCommitRefs},
		{"seeded-rendezvous", bugConfig(BugRendezvous), false, VioCommitUnparked},
		{"seeded-rendezvous-dpor", bugConfig(BugRendezvous), true, VioCommitUnparked},
	}
}

func bugConfig(b Bug) Config {
	cfg := DefaultConfig()
	cfg.Bug = b
	return cfg
}

// BenchSuite runs the fixed row set and returns its evidence, erroring
// if any row misses its expected verdict (a clean row violated, an
// incomplete clean exploration, or a seeded bug not rediscovered).
func BenchSuite() ([]BenchRow, error) {
	var rows []BenchRow
	for _, r := range benchRows() {
		res, err := Run(r.cfg, Options{DPOR: r.dpor})
		if err != nil {
			return nil, fmt.Errorf("mc bench %s: %w", r.name, err)
		}
		if res.Violation != r.expect {
			return nil, fmt.Errorf("mc bench %s: verdict %s, want %s",
				r.name, res.Violation, r.expect)
		}
		if r.expect == VioNone && !res.Complete {
			return nil, fmt.Errorf("mc bench %s: state graph not closed", r.name)
		}
		rows = append(rows, BenchRow{
			Name:        r.name,
			CPUs:        r.cfg.CPUs,
			Workers:     r.cfg.Workers,
			Bug:         r.cfg.Bug.String(),
			DPOR:        r.dpor,
			Violation:   res.Violation.String(),
			Complete:    res.Complete,
			States:      res.States,
			Transitions: res.Transitions,
			SleepSkips:  res.SleepSkips,
			BoundUsed:   res.BoundUsed,
			TraceLen:    res.TraceLen,
			ElapsedMS:   res.ElapsedMS,
		})
	}
	return rows, nil
}

// WriteBenchTable renders the suite for humans.
func WriteBenchTable(w io.Writer, rows []BenchRow) {
	fmt.Fprintf(w, "%-24s %5s %7s %-26s %9s %11s %10s %6s %4s %9s\n",
		"row", "cpus", "workers", "violation", "states",
		"transitions", "pruned", "bound", "cex", "ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %5d %7d %-26s %9d %11d %10d %6d %4d %9.2f\n",
			r.Name, r.CPUs, r.Workers, r.Violation, r.States,
			r.Transitions, r.SleepSkips, r.BoundUsed, r.TraceLen, r.ElapsedMS)
	}
}

// WriteBaseline writes BENCH_mc.json.
func WriteBaseline(path string, rows []BenchRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Schema: baselineSchema, Rows: rows})
}

// LoadBaseline reads a committed BENCH_mc.json.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("mc: parsing baseline %s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("mc: baseline %s has schema %q, want %q",
			path, b.Schema, baselineSchema)
	}
	return &b, nil
}

// CompareBaseline diffs fresh rows against the committed baseline.
// Every field except ElapsedMS is exact: the exploration is
// deterministic, so any delta is a real change to the protocol's
// reachable behaviour (or to the checker) that must be re-committed
// deliberately.
func CompareBaseline(base *Baseline, rows []BenchRow) []string {
	var violations []string
	byName := make(map[string]BenchRow, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, want := range base.Rows {
		got, ok := byName[want.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: row missing from fresh run", want.Name))
			continue
		}
		delete(byName, want.Name)
		if got.Violation != want.Violation {
			violations = append(violations, fmt.Sprintf(
				"%s: verdict %s, baseline %s", want.Name, got.Violation, want.Violation))
		}
		if got.Complete != want.Complete {
			violations = append(violations, fmt.Sprintf(
				"%s: complete=%v, baseline %v", want.Name, got.Complete, want.Complete))
		}
		if got.States != want.States || got.Transitions != want.Transitions {
			violations = append(violations, fmt.Sprintf(
				"%s: explored (%d states, %d transitions), baseline (%d, %d)",
				want.Name, got.States, got.Transitions, want.States, want.Transitions))
		}
		if got.SleepSkips != want.SleepSkips {
			violations = append(violations, fmt.Sprintf(
				"%s: %d sleep-set prunes, baseline %d",
				want.Name, got.SleepSkips, want.SleepSkips))
		}
		if got.BoundUsed != want.BoundUsed || got.TraceLen != want.TraceLen {
			violations = append(violations, fmt.Sprintf(
				"%s: bound=%d cex=%d, baseline bound=%d cex=%d",
				want.Name, got.BoundUsed, got.TraceLen, want.BoundUsed, want.TraceLen))
		}
	}
	var extra []string
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		violations = append(violations,
			fmt.Sprintf("%s: row not in baseline (add it deliberately)", name))
	}
	return violations
}
