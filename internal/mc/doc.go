// Package mc is an explicit-state model checker for Mercury's
// mode-switch protocol (§4.3, §5.1.1, §5.4).
//
// The engine's dependability story rests on one coordination path: the
// commit gate over the virtualization object's entry/exit refcount, the
// deferral/retry timer behind it, and the SMP IPI rendezvous that parks
// every application processor before the control processor applies the
// state-transfer functions. Chaos campaigns probe that path with seeded
// schedules; this package closes the gap ROADMAP item 5 left open by
// enumerating *every* interleaving of a reduced Mercury machine — K
// CPUs, in-flight VO operations, the retry timer, rendezvous
// park/unpark, and dirty-journal arm/replay — and checking, in each
// reachable state, the same invariants internal/core/invariants.go
// codifies for the full system:
//
//   - the commit gate: a switch commits only at refcount zero with
//     every AP parked (VioCommitRefs, VioCommitUnparked);
//   - the refcount is never negative (VioNegativeRefs);
//   - no torn mode: whenever the machine is quiescent, every CPU's
//     loaded control state agrees with the committed mode
//     (VioTornMode);
//   - journal fidelity: no native-mode store lands where the attached
//     VMM cannot see it (VioLostWrite);
//   - bounded liveness: every deferred switch eventually commits or
//     exhausts MaxDeferrals — any state with no enabled action that is
//     not a clean terminal state is reported (VioDeadlock).
//
// The model is not a transcription of the protocol: internal/core's
// switch machinery was refactored so its atomic steps are named
// (core.SwitchStep) and its gate/retry decisions are pure functions
// (core.CommitGateOpen, core.DeferVerdict), and the reduced machine
// executes those same functions. A conformance test in internal/core
// records the production ISR's step sequence through a StepObserver and
// checks it against the model's control-processor projection.
//
// Exploration is depth-first with full state hashing, an
// iterative-deepening bound that yields minimal counterexamples, and
// optional sleep-set partial-order pruning (DPOR) driven by per-action
// read/write sets. Seeded regressions — the PR-3 TOCTOU commit-gate
// revert and an injected rendezvous no-wait bug — gate CI: the checker
// must rediscover both mechanically, and the counterexample renders
// through obs.EventLog records so `mercuryctl mc -trace` replays the
// failing interleaving step by step.
package mc
