package mc

import (
	"math/bits"
	"time"
)

// DefaultMaxDepth is the iterative-deepening ceiling: deep enough to
// fully close every committed configuration's state graph.
const DefaultMaxDepth = 512

// Options tunes one exploration.
type Options struct {
	// MaxDepth bounds the iterative deepening (0 = DefaultMaxDepth).
	MaxDepth int
	// DPOR enables sleep-set partial-order pruning. Heuristic: it cuts
	// commuting interleavings (measured in Result.SleepSkips) and every
	// seeded bug must still be found under it, but the CI clean-pass
	// verdict always comes from a full (DPOR-off) exploration.
	DPOR bool
}

// Result is one exploration's verdict.
type Result struct {
	Config Config `json:"config"`
	DPOR   bool   `json:"dpor"`
	// Complete reports that the state graph was fully closed below the
	// bound — the verdict is exhaustive for the whole (finite) graph,
	// not just a depth slice.
	Complete bool `json:"complete"`
	// BoundUsed is the iterative-deepening limit of the deciding run.
	BoundUsed int `json:"bound_used"`

	// States and Transitions count the deciding run's distinct hashed
	// states and applied transitions — deterministic for a fixed
	// configuration, so they are exact-diffed against BENCH_mc.json.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// SleepSkips counts transitions pruned by the sleep sets (0 when
	// DPOR is off).
	SleepSkips int `json:"sleep_skips"`

	// Violation is VioNone for a clean protocol; otherwise Trace is a
	// minimal counterexample: the shortest action sequence from the
	// boot state to a violating state.
	Violation     Violation     `json:"violation"`
	ViolationName string        `json:"violation_name"`
	Trace         []Action      `json:"-"`
	TraceLen      int           `json:"trace_len"`
	Elapsed       time.Duration `json:"-"`
	ElapsedMS     float64       `json:"elapsed_ms"`
}

// Run explores cfg's reduced machine: depth-first with full state
// hashing, iterative deepening (which also yields minimal
// counterexamples), and optional sleep-set pruning. An error is only
// returned for an invalid configuration — a found violation is a
// Result, not an error.
func Run(cfg Config, opt Options) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxDepth := opt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	start := time.Now()
	res := &Result{Config: cfg, DPOR: opt.DPOR}

	limit := 16
	if limit > maxDepth {
		limit = maxDepth
	}
	for {
		e := newExplorer(cfg, opt.DPOR)
		found := e.expand(initState(cfg), limit, 0)
		res.BoundUsed = limit
		res.States = len(e.visited)
		res.Transitions = e.transitions
		res.SleepSkips = e.sleepSkips
		if found {
			// Iterative deepening found *a* counterexample within the
			// first sufficient bound; shrink to the minimal one with
			// full exploration (sleep sets could prune the shortest
			// representative of a commuting class).
			trace, vio := minimize(cfg, e.cex, e.vio)
			res.Violation = vio
			res.Trace = trace
			res.Complete = false
			break
		}
		if !e.boundHit {
			res.Complete = true
			res.Violation = VioNone
			break
		}
		if limit >= maxDepth {
			// Bounded verdict: no violation up to maxDepth, graph not
			// fully closed.
			res.Violation = VioNone
			break
		}
		limit *= 2
		if limit > maxDepth {
			limit = maxDepth
		}
	}
	res.ViolationName = res.Violation.String()
	res.TraceLen = len(res.Trace)
	res.Elapsed = time.Since(start)
	res.ElapsedMS = float64(res.Elapsed.Microseconds()) / 1000
	return res, nil
}

// minimize shrinks a counterexample to minimal length by re-exploring
// with ever-tighter depth bounds (DPOR off) until no violation fits.
func minimize(cfg Config, trace []Action, vio Violation) ([]Action, Violation) {
	for len(trace) > 1 {
		e := newExplorer(cfg, false)
		if !e.expand(initState(cfg), len(trace)-1, 0) {
			break
		}
		trace, vio = e.cex, e.vio
	}
	return trace, vio
}

// explorer is one bounded depth-first search.
type explorer struct {
	cfg  Config
	dpor bool

	// visited maps a hashed state to the largest remaining budget it
	// was expanded with; reaching it again with no more budget is a
	// cut, with more budget a (deeper-seeing) re-expansion.
	visited map[[keySize]byte]int

	path        []Action
	cex         []Action
	vio         Violation
	transitions int
	sleepSkips  int
	boundHit    bool

	fp [numActionIDs]footprint
}

func newExplorer(cfg Config, dpor bool) *explorer {
	e := &explorer{
		cfg:     cfg,
		dpor:    dpor,
		visited: make(map[[keySize]byte]int, 1<<12),
	}
	e.buildFootprints()
	return e
}

// expand visits s (already applied, not yet invariant-checked only for
// the root) and explores its successors within the remaining budget.
// Returns true when a violation was found; the trace is in e.cex/e.vio.
func (e *explorer) expand(s State, remaining int, sleep uint32) bool {
	key := encode(&s)
	if r, ok := e.visited[key]; ok && r >= remaining {
		return false
	}
	e.visited[key] = remaining

	acts := enabled(make([]Action, 0, 16), &s, &e.cfg)
	if len(acts) == 0 {
		if !terminal(&s, &e.cfg) {
			e.vio = VioDeadlock
			e.cex = append([]Action(nil), e.path...)
			return true
		}
		return false
	}
	if remaining == 0 {
		e.boundHit = true
		return false
	}

	var explored []uint8
	for _, a := range acts {
		id := actionID(a)
		if e.dpor && sleep&(1<<id) != 0 {
			e.sleepSkips++
			continue
		}
		ns := apply(s, a, &e.cfg)
		e.transitions++
		e.path = append(e.path, a)
		if v := invariants(&ns, &e.cfg); v != VioNone {
			e.vio = v
			e.cex = append([]Action(nil), e.path...)
			e.path = e.path[:len(e.path)-1]
			return true
		}
		var childSleep uint32
		if e.dpor {
			for _, pid := range explored {
				if e.independent(pid, id) {
					childSleep |= 1 << pid
				}
			}
			for rest := sleep; rest != 0; rest &= rest - 1 {
				b := uint8(bits.TrailingZeros32(rest))
				if e.independent(b, id) {
					childSleep |= 1 << b
				}
			}
		}
		if e.expand(ns, remaining-1, childSleep) {
			e.path = e.path[:len(e.path)-1]
			return true
		}
		e.path = e.path[:len(e.path)-1]
		explored = append(explored, id)
	}
	return false
}
