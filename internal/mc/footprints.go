package mc

// Sleep-set DPOR needs a sound independence relation. Two actions are
// independent when they commute from every state, which we
// over-approximate with static read/write footprints over the reduced
// machine's variables: an action's reads include its enabling guard
// (so disabling/enabling is covered), and two actions are independent
// iff neither's write set intersects the other's read or write set.
// Over-approximating a footprint is always safe — it only costs
// pruning, never soundness.

// Variable bits. Scalars share coarse groups; per-CPU and per-worker
// state gets its own bit so operations on different CPUs/workers can
// commute.
const (
	vRefs    uint32 = 1 << 0 // VO refcount
	vMode    uint32 = 1 << 1 // committed global mode
	vReq     uint32 = 1 << 2 // Pending, Requests, Deferrals
	vTimer   uint32 = 1 << 3 // retry timer
	vCP      uint32 = 1 << 4 // CP location, Target, IPISent, Released, Committing, Aborting
	vJournal uint32 = 1 << 5 // JArmed, JDirty
	vLost    uint32 = 1 << 6 // LostWrite flag

	vAPBase  = 8                  // bits 8..8+MaxCPUs-1: AP[i] park state
	vCPUBase = vAPBase + MaxCPUs  // per-CPU loaded control state
	vWBase   = vCPUBase + MaxCPUs // bits per worker: W, WMode, WOps
)

func vAP(i int) uint32   { return 1 << (vAPBase + i) }
func vCPUM(i int) uint32 { return 1 << (vCPUBase + i) }
func vW(w int) uint32    { return 1 << (vWBase + w) }

// Action-ID space: one dense id per (kind, who) pair so sleep sets fit
// a uint32 bitmask.
const (
	idRaise = iota
	idTimerFire
	idGateCheck
	idGatherComplete
	idGateRecheck
	idCommitBegin
	idCommitEnd
	idFinish
	idAPParkBase                                // + (cpu-1), cpus 1..MaxCPUs-1
	idAPResumeBase = idAPParkBase + MaxCPUs - 1 // + (cpu-1)
	idEnterBase    = idAPResumeBase + MaxCPUs - 1
	idWriteBase    = idEnterBase + MaxWorkers
	idExitBase     = idWriteBase + MaxWorkers
	numActionIDs   = idExitBase + MaxWorkers
)

// actionID maps an action to its dense id.
func actionID(a Action) uint8 {
	switch a.Kind {
	case ActRaise:
		return idRaise
	case ActTimerFire:
		return idTimerFire
	case ActGateCheck:
		return idGateCheck
	case ActGatherComplete:
		return idGatherComplete
	case ActGateRecheck:
		return idGateRecheck
	case ActCommitBegin:
		return idCommitBegin
	case ActCommitEnd:
		return idCommitEnd
	case ActFinish:
		return idFinish
	case ActAPPark:
		return uint8(idAPParkBase + int(a.Who) - 1)
	case ActAPResume:
		return uint8(idAPResumeBase + int(a.Who) - 1)
	case ActEnter:
		return uint8(idEnterBase + int(a.Who))
	case ActWrite:
		return uint8(idWriteBase + int(a.Who))
	}
	return uint8(idExitBase + int(a.Who)) // ActExit
}

// footprint is an action's static read/write variable sets.
type footprint struct{ r, w uint32 }

// buildFootprints fills the per-id footprint table for e.cfg. Guards
// count as reads.
func (e *explorer) buildFootprints() {
	cfg := &e.cfg
	var allAP uint32
	for i := 1; i < cfg.CPUs; i++ {
		allAP |= vAP(i)
	}
	e.fp[idRaise] = footprint{r: vReq | vCP | vTimer | vMode, w: vReq | vCP}
	e.fp[idTimerFire] = footprint{r: vTimer | vCP, w: vTimer | vCP}
	e.fp[idGateCheck] = footprint{r: vCP | vRefs | vReq, w: vCP | vReq | vTimer}
	e.fp[idGatherComplete] = footprint{r: vCP | allAP, w: vCP}
	e.fp[idGateRecheck] = footprint{r: vCP | vRefs | vMode, w: vCP}
	e.fp[idCommitBegin] = footprint{r: vCP | vJournal, w: vCP | vJournal}
	e.fp[idCommitEnd] = footprint{r: vCP | vJournal,
		w: vCP | vMode | vCPUM(0) | vJournal | vReq}
	e.fp[idFinish] = footprint{r: vCP | allAP | vReq,
		w: vCP | allAP | vReq | vTimer}
	for i := 1; i < MaxCPUs; i++ {
		e.fp[idAPParkBase+i-1] = footprint{r: vCP | vAP(i), w: vAP(i)}
		e.fp[idAPResumeBase+i-1] = footprint{r: vCP | vAP(i),
			w: vAP(i) | vCPUM(i)}
	}
	for w := 0; w < MaxWorkers; w++ {
		guard := vW(w)
		if j := cfg.workerCPU(w); j == 0 {
			guard |= vCP
		} else {
			guard |= vAP(j)
		}
		e.fp[idEnterBase+w] = footprint{r: guard | vMode, w: vRefs | vW(w)}
		e.fp[idWriteBase+w] = footprint{r: guard | vMode | vJournal,
			w: vJournal | vLost | vW(w)}
		e.fp[idExitBase+w] = footprint{r: guard, w: vRefs | vW(w)}
	}
}

// independent reports whether the actions with ids a and b commute:
// neither writes what the other reads or writes.
func (e *explorer) independent(a, b uint8) bool {
	fa, fb := e.fp[a], e.fp[b]
	return fa.w&(fb.r|fb.w) == 0 && fb.w&(fa.r|fa.w) == 0
}
