package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/xen"
)

// The request-serving workload (§5.2/§7.3): an open-loop stream of
// block I/O requests arrives at a seeded jittered-uniform rate and is
// served either by the native block layer (M-N) or through the
// multi-queue split datapath (M-V) — per-queue rings, coalesced
// doorbells, and a backend in the driver domain that the VMM's credit
// scheduler runs as a real domain. With SwitchMid set, a mode switch
// fires at the halfway point while requests are in flight, and the
// result reports the tail latency of the requests whose lifetime
// crossed the switch window — the mode-switch tail-latency story.

// IOConfig parameterizes one request-serving run.
type IOConfig struct {
	// Queues is the number of hardware queues (M-V only; per-vCPU in a
	// real system). Default 1.
	Queues int
	// Depth is the ring depth per queue in slots (rounded up to a power
	// of two). Default 64.
	Depth int
	// Requests is the total number of requests to issue. Default 2000.
	Requests int
	// MeanArrival is the mean open-loop inter-arrival gap in cycles;
	// actual gaps are jittered uniformly in [mean/2, 3*mean/2).
	// Default 8000.
	MeanArrival hw.Cycles
	// ReadPct is the percentage of reads in the mix (0..100). Default 50.
	ReadPct int
	// Seed drives arrivals and the read/write mix deterministically.
	Seed int64
	// Virtual selects the M-V split datapath; false is the M-N native
	// block layer.
	Virtual bool
	// SwitchMid, with Virtual set, requests a switch to native mode once
	// half the requests have completed, while the rest are in flight.
	SwitchMid bool
	// ReqThreshold / RespThreshold are the doorbell-coalescing re-arm
	// distances (see xen.IORing). Default Depth/4, min 1.
	ReqThreshold  int
	RespThreshold int
	// Policy is Mercury's frame-tracking policy.
	Policy core.TrackingPolicy
	// MemBytes sizes the machine (default 128 MB).
	MemBytes uint64
	// Collector, when non-nil, is installed before construction.
	Collector *obs.Collector
}

func (cfg *IOConfig) fill() {
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Depth < 2 {
		cfg.Depth = 64
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	if cfg.MeanArrival == 0 {
		cfg.MeanArrival = 8000
	}
	if cfg.ReadPct < 0 || cfg.ReadPct > 100 {
		cfg.ReadPct = 50
	}
	if cfg.ReqThreshold <= 0 {
		cfg.ReqThreshold = cfg.Depth / 4
	}
	if cfg.ReqThreshold < 1 {
		cfg.ReqThreshold = 1
	}
	if cfg.RespThreshold <= 0 {
		cfg.RespThreshold = cfg.Depth / 4
	}
	if cfg.RespThreshold < 1 {
		cfg.RespThreshold = 1
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 128 << 20
	}
}

// IOResult reports one run.
type IOResult struct {
	Submitted  int `json:"submitted"`
	Completed  int `json:"completed"`
	Duplicates int `json:"duplicates"` // responses for an already-completed ID
	Lost       int `json:"lost"`       // submitted but never completed

	// Whole-run latency distribution (cycles, exact quantiles).
	P50  hw.Cycles `json:"p50"`
	P99  hw.Cycles `json:"p99"`
	P999 hw.Cycles `json:"p999"`
	Max  hw.Cycles `json:"max"`
	Mean hw.Cycles `json:"mean"`

	// TotalCyc is the boot CPU's elapsed cycles for the run.
	TotalCyc hw.Cycles `json:"total_cyc"`

	// Doorbell accounting across both ring directions (M-V only).
	ReqSlots    uint64 `json:"req_slots"`
	ReqKicks    uint64 `json:"req_kicks"`
	RespSlots   uint64 `json:"resp_slots"`
	RespKicks   uint64 `json:"resp_kicks"`
	ForcedKicks uint64 `json:"forced_kicks"`
	// SuppressionRatio is ring slots moved per doorbell actually rung
	// (forced kicks included); 0 when no doorbell was ever needed.
	SuppressionRatio float64 `json:"suppression_ratio"`

	// Backend scheduling: doorbell upcalls vs requests served, so the
	// share of work done by credit-scheduler slices is visible.
	BackendEvents uint64 `json:"backend_events"`
	BackendBursts uint64 `json:"backend_bursts"`

	// Mode-switch window (SwitchMid only): the detach's own cycles and
	// the latency distribution of requests whose [arrival, completion]
	// crossed the switch window.
	SwitchCyc      hw.Cycles `json:"switch_cyc"`
	WindowRequests int       `json:"window_requests"`
	WindowP50      hw.Cycles `json:"window_p50"`
	WindowP99      hw.Cycles `json:"window_p99"`
	WindowP999     hw.Cycles `json:"window_p999"`

	FinalMode string `json:"final_mode"`
}

// ioRec tracks one request's lifetime (its arrival stamp lives in the
// server's arrivals schedule, indexed by request ID).
type ioRec struct {
	done   hw.Cycles
	pfn    hw.PFN
	active bool
}

// QuiescerName is the detach-quiescer registration the M-V datapath
// installs; tests and tools can unregister it by name.
const QuiescerName = "io-datapath"

// RunIOServer builds a Mercury system, runs the request-serving
// workload, and reports the result. Deterministic for a given config.
func RunIOServer(cfg IOConfig) (*IOResult, error) {
	cfg.fill()
	hwCfg := hw.DefaultConfig()
	hwCfg.Name = "io-server"
	hwCfg.MemBytes = cfg.MemBytes
	hwCfg.NumCPUs = 1
	m := hw.NewMachine(hwCfg)
	if cfg.Collector != nil {
		m.SetTelemetry(cfg.Collector)
	}
	mc, err := core.New(core.Config{Machine: m, Policy: cfg.Policy})
	if err != nil {
		return nil, fmt.Errorf("workloads: io server: %w", err)
	}
	boot := m.BootCPU()
	nb := &guest.NativeBlock{K: mc.K, Disk: m.Disk}

	// Pre-draw the arrival schedule and read/write mix. Integer
	// jittered-uniform gaps keep the schedule identical across Go
	// versions (no float stream).
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := make([]hw.Cycles, cfg.Requests)
	writes := make([]bool, cfg.Requests)
	t := boot.Now()
	for i := range arrivals {
		gap := int64(cfg.MeanArrival)/2 + rng.Int63n(int64(cfg.MeanArrival))
		t += hw.Cycles(gap)
		arrivals[i] = t
		writes[i] = int(rng.Int63n(100)) >= cfg.ReadPct
	}

	recs := make([]ioRec, cfg.Requests)
	res := &IOResult{}
	srv := &ioServer{
		cfg: cfg, m: m, mc: mc, boot: boot, nb: nb,
		arrivals: arrivals, writes: writes, recs: recs, res: res,
	}
	if cfg.Virtual {
		if err := srv.setupVirtual(); err != nil {
			return nil, err
		}
	}
	start := boot.Now()
	if err := srv.run(); err != nil {
		return nil, err
	}
	res.TotalCyc = boot.Now() - start
	srv.finish()
	return res, nil
}

// ioServer is the run state of one request-serving workload.
type ioServer struct {
	cfg  IOConfig
	m    *hw.Machine
	mc   *core.Mercury
	boot *hw.CPU
	nb   *guest.NativeBlock

	arrivals []hw.Cycles
	writes   []bool
	recs     []ioRec
	res      *IOResult

	// M-V datapath (nil/zero when native).
	client  *xen.Domain
	be      *xen.BlkMQBackend
	fe      *guest.MQBlockFrontend
	virtual bool // datapath currently attached

	// Frame pools: client-owned for granted M-V buffers, kernel-owned
	// for the native path.
	clientPool []hw.PFN
	nativePool []hw.PFN

	nextArr   int   // next arrival index to admit
	pending   []int // arrived, not yet submitted
	doneCount int
	rr        int // round-robin queue cursor

	switchStart hw.Cycles
	switchEnd   hw.Cycles
	switched    bool

	subBuf []guest.MQIORequest
	blkBuf []guest.BlockReq
}

// blockFor spreads request i across the disk with enough adjacency for
// occasional elevator merges but no degenerate fully-sequential runs.
func (s *ioServer) blockFor(i int) uint64 { return uint64(i*7) % 4096 }

// setupVirtual switches to partial-virtual mode and wires the
// multi-queue split datapath: a client (frontend) domain whose memory
// the driver domain donates, per-queue rings and doorbell pairs, the
// backend registered as the driver domain's background work (credit-
// scheduled), and the detach quiescer that drains it all on a switch.
func (s *ioServer) setupVirtual() error {
	cfg, mc, boot := s.cfg, s.mc, s.boot
	if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
		return fmt.Errorf("workloads: io server: attach: %w", err)
	}
	v := mc.VMM
	poolFrames := cfg.Queues*cfg.Depth + 8
	client, err := v.HypDomctlCreateFromFrames(boot, mc.Dom, "io-client",
		hw.PFN(poolFrames+8))
	if err != nil {
		return fmt.Errorf("workloads: io server: client domain: %w", err)
	}
	s.client = client
	for i := 0; i < poolFrames; i++ {
		s.clientPool = append(s.clientPool, client.Frames.Alloc())
	}

	s.be = xen.NewBlkMQBackend(v, mc.Dom, s.nb.RawDevice(),
		cfg.Queues, cfg.Depth, cfg.ReqThreshold)
	mc.Dom.BackgroundWork = s.be.Serve
	v.SetWeight(mc.Dom, 512)
	s.fe = guest.NewMQBlockFrontend(v, client, mc.Dom.ID, cfg.RespThreshold)
	for qi := range s.be.Queues {
		q := s.be.Queues[qi]
		portBE := v.EvtchnAllocUnbound(boot, mc.Dom, client.ID)
		mc.Dom.SetPortHandler(portBE, s.be.OnQueueEvent(qi))
		portFE, err := v.EvtchnBindInterdomain(boot, client, mc.Dom.ID, portBE)
		if err != nil {
			return fmt.Errorf("workloads: io server: queue %d doorbell: %w", qi, err)
		}
		// Completion doorbell, backend -> frontend. The frontend polls,
		// so the handler is a no-op; what matters is the (coalesced)
		// EventSend cost and the pending mark.
		rPortFE := v.EvtchnAllocUnbound(boot, client, mc.Dom.ID)
		client.SetPortHandler(rPortFE, func(*hw.CPU) {})
		rPortBE, err := v.EvtchnBindInterdomain(boot, mc.Dom, client.ID, rPortFE)
		if err != nil {
			return fmt.Errorf("workloads: io server: queue %d completion: %w", qi, err)
		}
		q.RespKick = func(cc *hw.CPU) {
			if err := v.EvtchnSend(cc, mc.Dom, rPortBE); err != nil {
				panic(fmt.Sprintf("workloads: io server: resp kick: %v", err))
			}
		}
		s.fe.AddQueue(q.Ring, portFE)
	}

	// The client becomes the measured (current) domain; its timer
	// handler re-arms the tick so the VMM keeps granting the driver
	// domain its credit-scheduler slices.
	tick := hw.Cycles(s.m.Hz / guest.DefaultHzTicks)
	v.HypBindVirqTimer(boot, client, func(tc *hw.CPU) {
		v.HypSetTimer(tc, client, tc.Now()+tick)
	})
	v.SetCurrent(boot, client)
	s.virtual = true

	// The quiesce contract: before detach may commit, drain every
	// in-flight request (completions recorded exactly once, same as the
	// steady-state path), then tear the client down and hand the CPU
	// back to the driver domain so the hosted-domains check passes.
	mc.RegisterDetachQuiescer(QuiescerName, func(qc *hw.CPU) error {
		if !s.virtual {
			return nil
		}
		pump := func(pc *hw.CPU) {
			v.RunInDomain(pc, mc.Dom, func() {
				s.be.Serve(pc, tick)
			})
		}
		if err := s.fe.Drain(qc, pump, func(resp xen.BlkResponse) {
			s.complete(qc, resp)
		}); err != nil {
			return err
		}
		if err := v.HypDomctlDestroy(qc, mc.Dom, s.client.ID); err != nil {
			return err
		}
		v.SetCurrent(qc, mc.Dom)
		s.virtual = false
		return nil
	})
	return nil
}

// complete records one response, catching duplicates and recycling the
// request's buffer frame into the client pool.
func (s *ioServer) complete(c *hw.CPU, resp xen.BlkResponse) {
	id := int(resp.ID)
	r := &s.recs[id]
	if !r.active {
		s.res.Duplicates++
		return
	}
	r.active = false
	r.done = c.Now()
	s.doneCount++
	s.clientPool = append(s.clientPool, r.pfn)
	if resp.Err != "" {
		panic(fmt.Sprintf("workloads: io server: request %d failed: %s", id, resp.Err))
	}
}

// submitVirtual pushes as much of the pending queue as ring room and
// the frame pool allow, spreading across queues round-robin, then
// delivers all queue doorbells in one multicall.
func (s *ioServer) submitVirtual(c *hw.CPU) int {
	total := 0
	for attempts := 0; attempts < s.cfg.Queues && len(s.pending) > 0 && len(s.clientPool) > 0; attempts++ {
		qi := s.rr % s.cfg.Queues
		s.rr++
		n := len(s.pending)
		if n > len(s.clientPool) {
			n = len(s.clientPool)
		}
		s.subBuf = s.subBuf[:0]
		for _, id := range s.pending[:n] {
			pfn := s.clientPool[len(s.clientPool)-1]
			s.clientPool = s.clientPool[:len(s.clientPool)-1]
			s.recs[id].pfn = pfn
			s.recs[id].active = true
			s.subBuf = append(s.subBuf, guest.MQIORequest{
				ID: uint64(id), Block: s.blockFor(id), Write: s.writes[id], PFN: pfn,
			})
		}
		acc := s.fe.SubmitAsync(c, qi, s.subBuf)
		// Return unaccepted requests' frames and keep them pending.
		for _, r := range s.subBuf[acc:] {
			s.recs[r.ID].active = false
			s.clientPool = append(s.clientPool, r.PFN)
		}
		s.pending = s.pending[acc:]
		total += acc
	}
	if total > 0 {
		s.fe.Kick(c)
		s.res.Submitted += total
	}
	return total
}

// serveNative drains the pending queue through the native block layer
// (synchronous, elevator-merged), chunked by the native frame pool.
func (s *ioServer) serveNative(c *hw.CPU) int {
	if len(s.nativePool) == 0 {
		for i := 0; i < 64; i++ {
			s.nativePool = append(s.nativePool, s.mc.K.Frames.Alloc())
		}
	}
	total := 0
	for len(s.pending) > 0 {
		n := len(s.pending)
		if n > len(s.nativePool) {
			n = len(s.nativePool)
		}
		chunk := s.pending[:n]
		s.blkBuf = s.blkBuf[:0]
		for i, id := range chunk {
			s.blkBuf = append(s.blkBuf, guest.BlockReq{
				Block: s.blockFor(id), Write: s.writes[id], PFN: s.nativePool[i],
			})
		}
		s.nb.Submit(c, s.blkBuf)
		now := c.Now()
		for _, id := range chunk {
			s.recs[id].done = now
			s.doneCount++
		}
		s.res.Submitted += n
		s.pending = s.pending[n:]
		total += n
	}
	return total
}

// run is the open-loop serving loop: admit due arrivals, submit, poll
// completions, force-kick a sub-threshold tail the coalescing protocol
// left queued, and advance simulated time when genuinely idle.
func (s *ioServer) run() error {
	c := s.boot
	maxIters := s.cfg.Requests*200 + 100_000
	for iter := 0; s.doneCount < s.cfg.Requests; iter++ {
		if iter >= maxIters {
			return fmt.Errorf("workloads: io server wedged: %d/%d done, %d pending",
				s.doneCount, s.cfg.Requests, len(s.pending))
		}
		now := c.Now()
		for s.nextArr < s.cfg.Requests && s.arrivals[s.nextArr] <= now {
			s.pending = append(s.pending, s.nextArr)
			s.nextArr++
		}
		progress := 0
		if s.virtual {
			progress += s.submitVirtual(c)
			progress += s.pollVirtual(c)
		} else if len(s.pending) > 0 {
			progress += s.serveNative(c)
		}
		if s.cfg.SwitchMid && !s.switched && s.doneCount*2 >= s.cfg.Requests {
			s.switched = true
			s.switchStart = c.Now()
			if err := s.mc.SwitchSync(c, core.ModeNative); err != nil {
				return fmt.Errorf("workloads: io server: switch under load: %w", err)
			}
			s.switchEnd = c.Now()
			s.res.SwitchCyc = hw.Cycles(s.mc.Stats.LastDetachCyc.Load())
			progress++
		}
		if progress == 0 {
			if s.nextArr < s.cfg.Requests {
				if gap := s.arrivals[s.nextArr] - c.Now(); gap > 0 {
					c.Charge(gap)
				} else {
					c.Charge(50)
				}
			} else {
				// Tail: everything issued, completions still in flight.
				c.Charge(500)
			}
		}
	}
	return nil
}

// pollVirtual collects completions from every queue; if nothing came
// back while requests sit queued past a suppressed doorbell, it rings
// the doorbell unconditionally — the liveness half of the coalescing
// protocol (the backend's scheduler slices are the other half).
func (s *ioServer) pollVirtual(c *hw.CPU) int {
	polled := 0
	for qi := range s.fe.Queues {
		polled += s.fe.Poll(c, qi, func(resp xen.BlkResponse) { s.complete(c, resp) })
	}
	if polled == 0 && s.fe.Outstanding() > 0 {
		kicked := false
		for qi, q := range s.fe.Queues {
			if q.Ring.RequestsPending() > 0 {
				s.fe.ForceKick(c, qi)
				kicked = true
			}
		}
		if kicked {
			for qi := range s.fe.Queues {
				polled += s.fe.Poll(c, qi, func(resp xen.BlkResponse) { s.complete(c, resp) })
			}
		}
	}
	return polled
}

// finish folds counters and computes the exact latency quantiles.
func (s *ioServer) finish() {
	res, cfg := s.res, s.cfg
	res.Completed = s.doneCount
	res.Lost = res.Submitted - res.Completed
	res.FinalMode = s.mc.Mode().String()
	if s.cfg.Virtual {
		s.mc.UnregisterDetachQuiescer(QuiescerName)
		var reqSlots, reqKicks, respSlots, respKicks uint64
		for _, q := range s.be.Queues {
			st := &q.Ring.Stats
			reqSlots += st.ReqSlots.Load()
			reqKicks += st.ReqKicks.Load()
			respSlots += st.RespSlots.Load()
			respKicks += st.RespKicks.Load()
		}
		res.ReqSlots, res.ReqKicks = reqSlots, reqKicks
		res.RespSlots, res.RespKicks = respSlots, respKicks
		res.ForcedKicks = s.fe.Stats.ForcedKicks.Load()
		if rung := reqKicks + respKicks + res.ForcedKicks; rung > 0 {
			res.SuppressionRatio = float64(reqSlots+respSlots) / float64(rung)
		}
		res.BackendEvents = s.be.Stats.Events.Load()
		res.BackendBursts = s.be.Stats.Bursts.Load()
	}

	lat := make([]hw.Cycles, 0, len(s.recs))
	var sum uint64
	var window []hw.Cycles
	for i := range s.recs {
		r := &s.recs[i]
		if r.done == 0 {
			continue
		}
		arr := s.arrivals[i]
		l := r.done - arr
		lat = append(lat, l)
		sum += uint64(l)
		if cfg.SwitchMid && s.switched &&
			arr <= s.switchEnd && r.done >= s.switchStart {
			window = append(window, l)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		res.P50 = quantile(lat, 0.50)
		res.P99 = quantile(lat, 0.99)
		res.P999 = quantile(lat, 0.999)
		res.Max = lat[len(lat)-1]
		res.Mean = hw.Cycles(sum / uint64(len(lat)))
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	res.WindowRequests = len(window)
	if len(window) > 0 {
		res.WindowP50 = quantile(window, 0.50)
		res.WindowP99 = quantile(window, 0.99)
		res.WindowP999 = quantile(window, 0.999)
	}
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []hw.Cycles, q float64) hw.Cycles {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
