package workloads

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/vo"
)

// nativeTarget builds an N-L-style target without importing the bench
// package (no import cycle: bench imports workloads).
func nativeTarget(t *testing.T) *Target {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 128 << 20, NumCPUs: 1})
	m.NIC.Reflector = guest.EchoReflector(1, IperfTCPAckWindow)
	m.NIC.ReflectDelay = 18_000
	k, err := guest.Boot(m, guest.Config{Name: "nl", VO: vo.NewDirect(m), Frames: m.Frames})
	if err != nil {
		t.Fatal(err)
	}
	k.Blk = &guest.NativeBlock{K: k, Disk: m.Disk}
	k.Net = &guest.NativeNet{K: k, NIC: m.NIC}
	k.SetNetID(1)
	return &Target{
		K: k, M: m, RemoteID: 2,
		Run: func(name string, body guest.Body) {
			boot := m.BootCPU()
			k.Spawn(boot, name, guest.DefaultImage(name), body)
			k.Run(boot)
		},
	}
}

func TestLmbenchResultRows(t *testing.T) {
	r := LmbenchResult{ForkProc: 1, ExecProc: 2, ShProc: 3, Ctx2p0k: 4,
		Ctx16p16k: 5, Ctx16p64k: 6, MmapLT: 7, ProtFault: 8, PageFault: 9}
	names, vals := r.Rows()
	if len(names) != 9 || len(vals) != 9 {
		t.Fatalf("rows: %d names, %d values", len(names), len(vals))
	}
	for i, v := range vals {
		if v != float64(i+1) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

func TestLmbenchAllRowsPositiveAndOrdered(t *testing.T) {
	r := Lmbench(nativeTarget(t))
	_, vals := r.Rows()
	for i, v := range vals {
		if v <= 0 {
			t.Fatalf("row %d nonpositive: %v", i, v)
		}
	}
	// Structural orderings lmbench always shows.
	if !(r.ForkProc < r.ExecProc && r.ExecProc < r.ShProc) {
		t.Fatalf("fork < exec < sh violated: %v %v %v", r.ForkProc, r.ExecProc, r.ShProc)
	}
	if !(r.Ctx2p0k < r.Ctx16p16k && r.Ctx16p16k < r.Ctx16p64k) {
		t.Fatalf("ctx ordering violated: %v %v %v", r.Ctx2p0k, r.Ctx16p16k, r.Ctx16p64k)
	}
	if r.ProtFault >= r.PageFault {
		t.Fatalf("prot fault (%v) >= page fault (%v)", r.ProtFault, r.PageFault)
	}
}

func TestDbenchMovesData(t *testing.T) {
	res := Dbench(nativeTarget(t))
	if res.MBps <= 0 || res.BytesMoved == 0 {
		t.Fatalf("result: %+v", res)
	}
	wantBytes := uint64(dbenchClients*dbenchFiles) * uint64(dbenchFileKB+dbenchReadBackKB) << 10
	if res.BytesMoved != wantBytes {
		t.Fatalf("bytes moved = %d, want %d", res.BytesMoved, wantBytes)
	}
}

func TestOSDBRunsAllQueries(t *testing.T) {
	res := OSDB(nativeTarget(t))
	if res.Queries != osdbQueries || res.Cycles == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestKernelBuildCompilesAllUnits(t *testing.T) {
	tg := nativeTarget(t)
	res := KernelBuild(tg)
	if res.Units != kbuildUnits || res.Cycles == 0 {
		t.Fatalf("result: %+v", res)
	}
	// The object files exist.
	boot := tg.M.BootCPU()
	if _, err := tg.K.FS.Stat(boot, "/obj0.o"); err != nil {
		t.Fatalf("missing object file: %v", err)
	}
}

func TestPingPlausibleRTT(t *testing.T) {
	res := Ping(nativeTarget(t))
	// Two 37 us wire crossings plus stacks: a LAN-scale RTT.
	if res.AvgRTTMicros < 75 || res.AvgRTTMicros > 1000 {
		t.Fatalf("RTT = %v us", res.AvgRTTMicros)
	}
}

func TestIperfWireLimitAndAcks(t *testing.T) {
	tgUDP := nativeTarget(t)
	tgUDP.M.NIC.SetLink(hw.Gigabit())
	udp := Iperf(tgUDP, 0)
	if udp.Mbps <= 0 || udp.Mbps > 1000 {
		t.Fatalf("UDP = %v Mb/s", udp.Mbps)
	}
	tgTCP := nativeTarget(t)
	tgTCP.M.NIC.SetLink(hw.Gigabit())
	tcp := Iperf(tgTCP, IperfTCPAckWindow)
	if tcp.Mbps <= 0 || tcp.Mbps > udp.Mbps+1 {
		t.Fatalf("TCP %v vs UDP %v", tcp.Mbps, udp.Mbps)
	}
}

func TestIperf100MbIsWireLimited(t *testing.T) {
	tg := nativeTarget(t) // default 100 Mb LAN
	res := Iperf(tg, 0)
	if res.Mbps > 101 {
		t.Fatalf("exceeded the wire: %v Mb/s", res.Mbps)
	}
	if res.Mbps < 85 {
		t.Fatalf("native sender should saturate 100 Mb: %v Mb/s", res.Mbps)
	}
}
