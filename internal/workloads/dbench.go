package workloads

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw"
)

// Dbench reproduces the strict I/O-bound dbench 3.03 workload: a set of
// client processes each running a netbench-style file mix — create,
// sequential 8 KB writes, reads back through the page cache, stat and
// delete — with the filesystem's writeback pushing batched blocks at
// the block driver. The result is a throughput score, so *lower elapsed
// cycles = higher score*.
type DbenchResult struct {
	Cycles     hw.Cycles
	BytesMoved uint64
	// MBps is the throughput score at the simulated clock.
	MBps float64
}

// Dbench geometry.
const (
	dbenchClients    = 4
	dbenchFiles      = 24
	dbenchFileKB     = 64
	dbenchChunkKB    = 8
	dbenchReadBackKB = 32
)

// Dbench runs the workload on the target.
func Dbench(t *Target) DbenchResult {
	var res DbenchResult
	t.Run("dbench", func(init *guest.Proc) {
		k := init.K
		init.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/dbench"); err != nil {
				panic(err)
			}
		})
		start := init.CPU().Now()
		for cl := 0; cl < dbenchClients; cl++ {
			cl := cl
			init.Fork("dbench-client", func(p *guest.Proc) {
				dir := fmt.Sprintf("/dbench/c%d", cl)
				p.Syscall(func(c *hw.CPU) {
					if _, err := p.K.FS.Mkdir(c, dir); err != nil {
						panic(err)
					}
				})
				for f := 0; f < dbenchFiles; f++ {
					path := fmt.Sprintf("%s/f%d", dir, f)
					fd, err := p.Creat(path)
					if err != nil {
						panic(err)
					}
					for off := 0; off < dbenchFileKB; off += dbenchChunkKB {
						p.Write(fd, dbenchChunkKB<<10)
					}
					p.Close(fd)
					fd, err = p.Open(path)
					if err != nil {
						panic(err)
					}
					p.Read(fd, dbenchReadBackKB<<10)
					p.Close(fd)
					if _, err := p.Stat(path); err != nil {
						panic(err)
					}
					if f%2 == 1 {
						if err := p.Unlink(path); err != nil {
							panic(err)
						}
					}
				}
				p.Exit(0)
			})
		}
		for cl := 0; cl < dbenchClients; cl++ {
			init.Wait()
		}
		// Final sync, as dbench's cleanup does.
		init.Syscall(func(c *hw.CPU) { k.FS.Sync(c) })
		res.Cycles = init.CPU().Now() - start
	})
	res.BytesMoved = uint64(dbenchClients*dbenchFiles) *
		uint64(dbenchFileKB+dbenchReadBackKB) << 10
	sec := float64(res.Cycles) / float64(t.M.Hz)
	res.MBps = float64(res.BytesMoved) / (1 << 20) / sec
	return res
}
