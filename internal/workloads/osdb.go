package workloads

import (
	"repro/internal/guest"
	"repro/internal/hw"
)

// OSDB reproduces the Open Source Database Benchmark's information-
// retrieval (IR) test against a PostgreSQL-like engine: a warm table
// file read through syscalls, a memory-mapped index whose lookups fault
// pages in on demand, and per-tuple CPU work. The mix is chosen to
// match what made OSDB-IR lose >20 % under Xen in the paper: lots of
// kernel crossings and demand faults around moderate computation.
type OSDBResult struct {
	Cycles  hw.Cycles
	Queries int
}

// OSDB geometry.
const (
	osdbTablePages = 1024 // 4 MB table
	osdbIndexPages = 256
	osdbQueries    = 48
	osdbPagesPerQ  = 12 // table pages scanned per query
	osdbFaultsPerQ = 6  // index pages faulted per query
	osdbCPUPerQ    = 42_000
)

// OSDB runs the IR test on the target.
func OSDB(t *Target) OSDBResult {
	var res OSDBResult
	t.Run("osdb-ir", func(p *guest.Proc) {
		k := p.K
		// Load phase (not timed): populate the table and index files.
		var table, index *guest.Inode
		p.Syscall(func(c *hw.CPU) {
			var err error
			if table, err = k.FS.Create(c, "/osdb.table"); err != nil {
				panic(err)
			}
			k.FS.WriteAt(c, table, 0, osdbTablePages*hw.PageSize)
			if index, err = k.FS.Create(c, "/osdb.index"); err != nil {
				panic(err)
			}
			k.FS.WriteAt(c, index, 0, osdbIndexPages*hw.PageSize)
			k.FS.Sync(c)
		})
		fd, err := p.Open("/osdb.table")
		if err != nil {
			panic(err)
		}

		start := p.CPU().Now()
		for q := 0; q < osdbQueries; q++ {
			// Index lookup: map a fresh window and fault pages in.
			winStart := (q * osdbFaultsPerQ) % (osdbIndexPages - osdbFaultsPerQ)
			base := p.MmapFile(index, osdbIndexPages)
			p.Touch(base+hw.VirtAddr(winStart<<hw.PageShift), osdbFaultsPerQ, false)
			// Table scan through read syscalls (page-cache hits).
			off := (q * osdbPagesPerQ * hw.PageSize) % ((osdbTablePages - osdbPagesPerQ) * hw.PageSize)
			p.Seek(fd, off)
			for i := 0; i < osdbPagesPerQ; i++ {
				p.Read(fd, hw.PageSize)
			}
			// Tuple processing.
			p.Work(osdbCPUPerQ)
			p.Munmap(base)
		}
		res.Cycles = p.CPU().Now() - start
		res.Queries = osdbQueries
		p.Close(fd)
	})
	return res
}
