package workloads

import (
	"repro/internal/guest"
	"repro/internal/hw"
)

// LmbenchResult holds the nine OS-related lmbench latencies the paper
// reports (Tables 1 and 2), in microseconds.
type LmbenchResult struct {
	ForkProc  float64 // lat_proc fork
	ExecProc  float64 // lat_proc exec
	ShProc    float64 // lat_proc shell
	Ctx2p0k   float64 // lat_ctx -s 0 2
	Ctx16p16k float64 // lat_ctx -s 16 16
	Ctx16p64k float64 // lat_ctx -s 64 16
	MmapLT    float64 // lat_mmap (large mapping)
	ProtFault float64 // lat_sig prot
	PageFault float64 // lat_pagefault
}

// Rows returns the results in the paper's row order with row labels.
func (r LmbenchResult) Rows() ([]string, []float64) {
	return []string{
			"Fork Process", "Exec Process", "Sh Process",
			"Ctx (2p/0k)", "Ctx (16p/16k)", "Ctx (16p/64k)",
			"Mmap LT", "Prot Fault", "Page Fault",
		}, []float64{
			r.ForkProc, r.ExecProc, r.ShProc,
			r.Ctx2p0k, r.Ctx16p16k, r.Ctx16p64k,
			r.MmapLT, r.ProtFault, r.PageFault,
		}
}

// Benchmark iteration counts: small enough to run fast, large enough to
// average out scheduling noise.
const (
	forkIters = 12
	execIters = 10
	shIters   = 6
	ctxRounds = 40
	mmapIters = 3
	protIters = 200
	pfIters   = 200
	mmapPages = 3072 // 12 MB mapping, lat_mmap's upper sizes
	pfPages   = 448  // pages faulted per page-fault round
)

// helloImage is the small program exec'd by lat_proc exec/shell.
func helloImage() guest.Image {
	return guest.Image{Name: "hello", TextPages: 120, DataPages: 60, StackPages: 8}
}

// shImage is /bin/sh.
func shImage() guest.Image {
	return guest.Image{Name: "sh", TextPages: 210, DataPages: 150, StackPages: 16}
}

// shellStartup models the shell's own work before running the command:
// reading rc files and searching PATH (stat-heavy), plus parsing.
func shellStartup(sh *guest.Proc) {
	k := sh.K
	sh.Syscall(func(c *hw.CPU) {
		if _, err := k.FS.Stat(c, "/bin/sh"); err != nil {
			_, _ = k.FS.Create(c, "/bin/sh.rc")
		}
	})
	for i := 0; i < 24; i++ {
		_, _ = sh.Stat("/bin/hello")
	}
	sh.Work(160_000)
}

// Lmbench runs the full microbenchmark suite on the target.
func Lmbench(t *Target) LmbenchResult {
	var r LmbenchResult
	t.Run("lmbench", func(p *guest.Proc) {
		img := guest.DefaultImage("lmbench")
		warmup(p, img)
		r.ForkProc = t.Micros(latFork(p))
		r.ExecProc = t.Micros(latExec(p))
		r.ShProc = t.Micros(latSh(p))
		r.MmapLT = t.Micros(latMmap(p))
		r.ProtFault = t.Micros(latProtFault(p))
		r.PageFault = t.Micros(latPageFault(p))
	})
	// The context-switch rings manage their own process sets.
	r.Ctx2p0k = t.Micros(latCtx(t, 2, 0))
	r.Ctx16p16k = t.Micros(latCtx(t, 16, 4))
	r.Ctx16p64k = t.Micros(latCtx(t, 16, 16))
	return r
}

// latFork measures fork+exit+wait of a child that does nothing — the
// cost is dominated by cloning the parent's resident address space.
func latFork(p *guest.Proc) hw.Cycles {
	return timeit(p, forkIters, func() {
		p.Fork("child", func(cp *guest.Proc) { cp.Exit(0) })
		p.Wait()
	})
}

// latExec measures fork + exec of the hello program.
func latExec(p *guest.Proc) hw.Cycles {
	return timeit(p, execIters, func() {
		p.Fork("execer", func(cp *guest.Proc) {
			cp.Exec(helloImage())
			cp.Exit(0)
		})
		p.Wait()
	})
}

// latSh measures fork + exec of /bin/sh, which itself forks and execs
// hello (lmbench's lat_proc shell).
func latSh(p *guest.Proc) hw.Cycles {
	return timeit(p, shIters, func() {
		p.Fork("sh", func(sh *guest.Proc) {
			sh.Exec(shImage())
			shellStartup(sh) // rc files, PATH search
			sh.Fork("hello", func(h *guest.Proc) {
				h.Exec(helloImage())
				h.Exit(0)
			})
			sh.Wait()
			sh.Exit(0)
		})
		p.Wait()
	})
}

// latCtx measures one hop of the lmbench token-passing ring: nproc
// processes connected by pipes, each touching wsPages of private
// working set per activation.
func latCtx(t *Target, nproc, wsPages int) hw.Cycles {
	var perSwitch hw.Cycles
	t.Run("lat_ctx", func(init *guest.Proc) {
		k := init.K
		pipes := make([]*guest.Pipe, nproc)
		for i := range pipes {
			pipes[i] = k.NewPipe()
		}
		// Cold cache lines per page beyond the L1 (64 KB working sets
		// spill; 16 KB mostly does not).
		var cold hw.Cycles
		if nproc*wsPages*hw.PageSize > 256<<10 {
			cold = 1000
		}
		done := k.NewPipe()
		ready := k.NewPipe()
		for i := 0; i < nproc; i++ {
			i := i
			init.Fork("ring", func(rp *guest.Proc) {
				// Private working set, populated before timing starts.
				var ws hw.VirtAddr
				if wsPages > 0 {
					ws = rp.Mmap(wsPages, guest.ProtRead|guest.ProtWrite, true)
				}
				rp.PipeWrite(ready, 1)
				in, out := pipes[i], pipes[(i+1)%nproc]
				for round := 0; round < ctxRounds; round++ {
					rp.PipeRead(in, 1)
					if wsPages > 0 {
						rp.AS.TouchWorkingSet(rp.CPU(), ws, wsPages, cold)
					}
					rp.PipeWrite(out, 1)
				}
				rp.PipeWrite(done, 1)
				rp.Exit(0)
			})
		}
		// Wait for every ring process to be parked on its pipe.
		init.PipeRead(ready, nproc)
		init.Yield() // let the last writer reach its read
		// Inject the token and time the rounds.
		start := init.CPU().Now()
		init.PipeWrite(pipes[0], 1)
		for i := 0; i < nproc; i++ {
			init.PipeRead(done, 1)
		}
		elapsed := init.CPU().Now() - start
		perSwitch = elapsed / hw.Cycles(nproc*ctxRounds)
		for i := 0; i < nproc; i++ {
			init.Wait()
		}
	})
	return perSwitch
}

// latMmap measures mapping, touching and unmapping a large anonymous
// region (lat_mmap's large sizes).
func latMmap(p *guest.Proc) hw.Cycles {
	return timeit(p, mmapIters, func() {
		// Demand-paged, as lat_mmap's access pattern is: every page
		// faults in on first touch.
		base := p.Mmap(mmapPages, guest.ProtRead|guest.ProtWrite, false)
		p.Touch(base, mmapPages, true)
		p.Munmap(base)
	})
}

// latProtFault measures catching a protection fault: writing a
// read-only page delivers SIGSEGV; the handler skips the faulting
// instruction (lmbench's lat_sig prot).
func latProtFault(p *guest.Proc) hw.Cycles {
	base := p.Mmap(1, guest.ProtRead|guest.ProtWrite, true)
	p.Mprotect(base, guest.ProtRead)
	p.SegvHandler = func(sp *guest.Proc, f *hw.TrapFrame) bool {
		f.Skip = true
		return true
	}
	defer func() { p.SegvHandler = nil }()
	return timeit(p, protIters, func() {
		p.Touch(base, 1, true) // aborted by the handler
	})
}

// latPageFault measures a soft file page fault: touching a page of a
// mapped, already-cached file (lmbench's lat_pagefault).
func latPageFault(p *guest.Proc) hw.Cycles {
	k := p.K
	// Build and warm the cache for a file big enough for the rounds.
	var ino *guest.Inode
	var err error
	p.Syscall(func(c *hw.CPU) {
		ino, err = k.FS.Create(c, "/pf.data")
		if err != nil {
			panic(err)
		}
		k.FS.WriteAt(c, ino, 0, pfPages*hw.PageSize)
	})
	per := timeit(p, pfIters, func() {
		base := p.MmapFile(ino, pfPages)
		p.Touch(base, pfPages, false)
		p.Munmap(base)
	})
	// Per-page latency: the mapping overhead is shared across pfPages
	// faults; lat_pagefault reports the per-fault time.
	return per / hw.Cycles(pfPages)
}
