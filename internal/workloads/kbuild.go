package workloads

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hw"
)

// KernelBuild reproduces the Linux 2.6.16 build benchmark: make forks
// and execs one compiler process per translation unit, each of which
// reads headers from the page cache, computes, and writes an object
// file. Process-management overhead (fork/exec under virtualization)
// dilutes into raw compilation the way the paper's ~9 % dom0/domU
// degradation shows.
type KBuildResult struct {
	Cycles hw.Cycles
	Units  int
}

// Build geometry.
const (
	kbuildUnits    = 20
	kbuildCPUPerTU = 18_000_000 // compile time per unit (~6 ms at 3 GHz)
	kbuildObjKB    = 24
	kbuildHdrReads = 12
	// kbuildJobs is make's -j level; the SMP runs exploit it.
	kbuildJobs = 2
)

// ccImage is the compiler binary.
func ccImage() guest.Image {
	return guest.Image{Name: "cc1", TextPages: 220, DataPages: 160, StackPages: 16}
}

// KernelBuild runs the build on the target.
func KernelBuild(t *Target) KBuildResult {
	var res KBuildResult
	t.Run("make", func(mk *guest.Proc) {
		k := mk.K
		// Header tree, warmed into the page cache (not timed).
		var hdr *guest.Inode
		mk.Syscall(func(c *hw.CPU) {
			var err error
			if hdr, err = k.FS.Create(c, "/usr/include.pack"); err != nil {
				if _, e2 := k.FS.Mkdir(c, "/usr"); e2 != nil {
					panic(e2)
				}
				if hdr, err = k.FS.Create(c, "/usr/include.pack"); err != nil {
					panic(err)
				}
			}
			k.FS.WriteAt(c, hdr, 0, 64*hw.PageSize)
		})
		warmup(mk, guest.DefaultImage("make"))

		start := mk.CPU().Now()
		inflight := 0
		for u := 0; u < kbuildUnits; u++ {
			u := u
			mk.Fork("cc1", func(cc *guest.Proc) {
				cc.Exec(ccImage())
				// Read headers through the cache.
				fd, err := cc.Open("/usr/include.pack")
				if err != nil {
					panic(err)
				}
				for h := 0; h < kbuildHdrReads; h++ {
					cc.Read(fd, 2*hw.PageSize)
				}
				cc.Close(fd)
				// Compile.
				cc.Work(kbuildCPUPerTU)
				// Emit the object file.
				ofd, err := cc.Creat(fmt.Sprintf("/obj%d.o", u))
				if err != nil {
					panic(err)
				}
				cc.Write(ofd, kbuildObjKB<<10)
				cc.Close(ofd)
				cc.Exit(0)
			})
			inflight++
			if inflight >= kbuildJobs {
				mk.Wait()
				inflight--
			}
		}
		for inflight > 0 {
			mk.Wait()
			inflight--
		}
		mk.Syscall(func(c *hw.CPU) { k.FS.Sync(c) })
		res.Cycles = mk.CPU().Now() - start
	})
	res.Units = kbuildUnits
	return res
}
