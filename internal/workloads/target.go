package workloads

import (
	"repro/internal/guest"
	"repro/internal/hw"
)

// Target is the system under test, as the workloads see it.
type Target struct {
	K *guest.Kernel
	M *hw.Machine
	// Run spawns an init process and drives the scheduler until every
	// process has exited.
	Run func(name string, body guest.Body)
	// RemoteID is the link-layer address of the synthetic remote host.
	RemoteID byte
}

// Micros converts cycles to microseconds on the target machine.
func (t *Target) Micros(n hw.Cycles) float64 { return t.M.Micros(n) }

// warmup gives the calling process the standard resident set of the
// lmbench binary: its text and data pages are faulted in, so subsequent
// forks copy a realistic number of page-table entries.
func warmup(p *guest.Proc, img guest.Image) {
	textEnd := guest.TextBase + hw.VirtAddr(img.TextPages<<hw.PageShift)
	p.Touch(guest.TextBase, img.TextPages, false)
	p.Touch(textEnd, img.DataPages, true)
}

// timeit measures the average cycles per iteration of fn.
func timeit(p *guest.Proc, iters int, fn func()) hw.Cycles {
	start := p.CPU().Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	// The process may have migrated CPUs mid-benchmark under SMP; both
	// clocks advance monotonically and benchmarks are long relative to
	// any skew.
	return (p.CPU().Now() - start) / hw.Cycles(iters)
}
