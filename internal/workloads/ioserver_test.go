package workloads

import (
	"reflect"
	"testing"
)

// TestIOServerSwitchUnderLoadExactlyOnce is the satellite's in-flight
// I/O across a mode switch test: every submitted request completes
// exactly once even though the M→N detach tears down the client domain
// mid-run, and the switch window actually intersected the request
// stream.
func TestIOServerSwitchUnderLoadExactlyOnce(t *testing.T) {
	res, err := RunIOServer(IOConfig{
		Queues: 2, Depth: 32, Requests: 600, MeanArrival: 6000,
		Seed: 42, Virtual: true, SwitchMid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted || res.Completed != 600 {
		t.Fatalf("completed %d of %d submitted (want 600)", res.Completed, res.Submitted)
	}
	if res.Duplicates != 0 || res.Lost != 0 {
		t.Fatalf("duplicates=%d lost=%d", res.Duplicates, res.Lost)
	}
	if res.FinalMode != "native" {
		t.Fatalf("final mode %q, want native", res.FinalMode)
	}
	if res.SwitchCyc == 0 {
		t.Fatal("switch window not measured")
	}
	if res.WindowRequests == 0 {
		t.Fatal("no requests were in flight across the switch")
	}
	if res.WindowP99 == 0 || res.WindowP99 < res.WindowP50 {
		t.Fatalf("window quantiles inconsistent: p50=%d p99=%d",
			res.WindowP50, res.WindowP99)
	}
}

// TestIOServerSuppressionRatio pins the acceptance criterion: at ring
// depth >= 64 the event-index protocol coalesces at least 5 ring slots
// per doorbell.
func TestIOServerSuppressionRatio(t *testing.T) {
	res, err := RunIOServer(IOConfig{
		Queues: 1, Depth: 64, Requests: 500, MeanArrival: 3000,
		Seed: 7, Virtual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 500 {
		t.Fatalf("completed %d of 500", res.Completed)
	}
	if res.SuppressionRatio < 5 {
		t.Fatalf("suppression ratio %.2f < 5 at depth 64 (kicks: req=%d resp=%d forced=%d)",
			res.SuppressionRatio, res.ReqKicks, res.RespKicks, res.ForcedKicks)
	}
}

func TestIOServerNativeBaseline(t *testing.T) {
	res, err := RunIOServer(IOConfig{
		Queues: 1, Depth: 32, Requests: 300, MeanArrival: 6000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 300 || res.Lost != 0 || res.Duplicates != 0 {
		t.Fatalf("native run: completed=%d lost=%d dup=%d",
			res.Completed, res.Lost, res.Duplicates)
	}
	if res.FinalMode != "native" {
		t.Fatalf("final mode %q", res.FinalMode)
	}
	if res.ReqKicks != 0 && res.SuppressionRatio != 0 {
		t.Fatal("native run should not touch the ring datapath")
	}
}

// TestIOServerDeterministic: the simulation has no wall-clock or float
// randomness, so identical configs must yield byte-identical results —
// the property the CI baseline diff relies on.
func TestIOServerDeterministic(t *testing.T) {
	cfg := IOConfig{
		Queues: 2, Depth: 16, Requests: 400, MeanArrival: 5000,
		Seed: 1234, Virtual: true, SwitchMid: true,
	}
	a, err := RunIOServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIOServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
