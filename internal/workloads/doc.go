// Package workloads implements the benchmark programs of the paper's
// evaluation (§7): the OS-related lmbench 3.0 microbenchmarks (Tables
// 1–2), and the application-level suite of Figures 3–4 — OSDB-IR,
// dbench, Linux kernel build, ping and Iperf. Each workload is written
// against the guest kernel's process API, so the same program runs
// unchanged on all six system configurations; the configurations differ
// only in which virtualization object and drivers sit underneath.
//
// RunIOServer is the split-device request server: an open-loop,
// seeded request stream (configurable read/write mix) served by the
// native block driver in M-N or through the §5.2 multi-queue datapath
// in M-V, optionally firing a mode switch at 50% completion. It
// reports latency quantiles, doorbell-suppression counters, a
// separate quantile set for requests in flight across the switch
// window, and an exactly-once verdict (duplicates and losses are
// counted and must be zero) — the measurement behind benchtab -exp io.
package workloads
