// Package workloads implements the benchmark programs of the paper's
// evaluation (§7): the OS-related lmbench 3.0 microbenchmarks (Tables
// 1–2), and the application-level suite of Figures 3–4 — OSDB-IR,
// dbench, Linux kernel build, ping and Iperf. Each workload is written
// against the guest kernel's process API, so the same program runs
// unchanged on all six system configurations; the configurations differ
// only in which virtualization object and drivers sit underneath.
package workloads
