package workloads

import (
	"repro/internal/guest"
	"repro/internal/hw"
)

// Ping and Iperf against the synthetic remote endpoint on the wire
// (§7.1: ping on the 100 Mb LAN; Iperf client/server across a Gigabit
// switch).

// PingResult is the average round-trip time.
type PingResult struct {
	AvgRTTCycles hw.Cycles
	AvgRTTMicros float64
}

const pingCount = 24

// Ping measures ICMP-style echo round trips.
func Ping(t *Target) PingResult {
	var res PingResult
	t.Run("ping", func(p *guest.Proc) {
		var total hw.Cycles
		for i := 0; i < pingCount; i++ {
			total += p.Ping(t.RemoteID, 56)
		}
		res.AvgRTTCycles = total / pingCount
	})
	res.AvgRTTMicros = t.Micros(res.AvgRTTCycles)
	return res
}

// IperfResult is the achieved stream bandwidth.
type IperfResult struct {
	Bytes  uint64
	Cycles hw.Cycles // sender-side elapsed (CPU- or wire-limited)
	Mbps   float64
}

// Iperf stream geometry: MTU-sized datagrams.
const (
	iperfFrameBytes = 1470
	iperfFrames     = 600
	// IperfTCPAckWindow is the ack window for the TCP-like run; the
	// system must be built with a reflector acking at this interval.
	IperfTCPAckWindow = 16
)

// Iperf streams data to the remote. ackWindow > 0 adds TCP-like ack
// processing every ackWindow frames (the reflector must be configured
// with the same window); 0 is the UDP run.
func Iperf(t *Target, ackWindow int) IperfResult {
	var res IperfResult
	t.Run("iperf", func(p *guest.Proc) {
		start := p.CPU().Now()
		for i := 1; i <= iperfFrames; i++ {
			p.SendFrame(guest.Frame{
				Dst: t.RemoteID, Proto: guest.ProtoData, Payload: iperfFrameBytes,
			})
			if ackWindow > 0 && i%ackWindow == 0 {
				p.RecvFrame(guest.ProtoAck)
			}
		}
		cpu := p.CPU().Now() - start
		// The sender cannot beat the wire: if CPU time per frame is
		// below serialization time, the NIC throttles transmission.
		wire := t.M.NIC.WireCycles(iperfFrames * (iperfFrameBytes + 3))
		if wire > cpu {
			cpu = wire
		}
		res.Cycles = cpu
	})
	res.Bytes = uint64(iperfFrames) * iperfFrameBytes
	sec := float64(res.Cycles) / float64(t.M.Hz)
	res.Mbps = float64(res.Bytes) * 8 / 1e6 / sec
	return res
}
